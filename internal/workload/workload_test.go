package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/node"
)

func TestNPBSuite(t *testing.T) {
	suite := NPB(ClassD)
	if len(suite) != 5 {
		t.Fatalf("suite has %d benchmarks, want 5 (EP CG LU BT SP)", len(suite))
	}
	names := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"EP", "CG", "LU", "BT", "SP"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestNPBClassScaling(t *testing.T) {
	d, _ := SpecByName(NPB(ClassD), "EP")
	c, _ := SpecByName(NPB(ClassC), "EP")
	ratio := float64(d.BaseDuration) / float64(c.BaseDuration)
	if math.Abs(ratio-16) > 0.01 {
		t.Errorf("class D/C runtime ratio = %v, want 16", ratio)
	}
}

func TestEPIsFrequencySensitive(t *testing.T) {
	ep, _ := SpecByName(NPB(ClassD), "EP")
	cg, _ := SpecByName(NPB(ClassD), "CG")
	if ep.Alpha <= cg.Alpha {
		t.Errorf("EP (α=%v) should be more frequency sensitive than CG (α=%v)", ep.Alpha, cg.Alpha)
	}
	if ep.Alpha != 1.0 {
		t.Errorf("EP α = %v, want 1.0 (pure compute)", ep.Alpha)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	valid := NPB(ClassD)[0]
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.CPUUtil = 1.5 },
		func(s *Spec) { s.MemFrac = -0.1 },
		func(s *Spec) { s.Alpha = 2 },
		func(s *Spec) { s.PhasePeriod = 0 },
		func(s *Spec) { s.BaseDuration = -1 },
		func(s *Spec) { s.RefProcs = 0 },
		func(s *Spec) { s.ScalePenalty = -1 },
	}
	for i, mutate := range cases {
		s := valid
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestReferenceDurationScaling(t *testing.T) {
	s, _ := SpecByName(NPB(ClassD), "CG")
	base := s.ReferenceDuration(s.RefProcs)
	if base != s.BaseDuration {
		t.Errorf("ref at RefProcs = %v, want base %v", base, s.BaseDuration)
	}
	// More processes → longer (communication penalty).
	if s.ReferenceDuration(256) <= base {
		t.Error("256-proc run not longer than reference")
	}
	// Fewer processes → shorter, but floored.
	small := s.ReferenceDuration(8)
	if small >= base {
		t.Error("8-proc run not shorter than reference")
	}
	if float64(small) < 0.6*float64(base) {
		t.Error("small-proc floor violated")
	}
	// Zero/negative procs falls back to reference.
	if s.ReferenceDuration(0) != base {
		t.Error("zero procs should use RefProcs")
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := SpecByName(NPB(ClassD), "FT"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRandomRequestDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	suite := NPB(ClassD)
	seenProcs := map[int]bool{}
	seenBench := map[string]bool{}
	for i := 0; i < 500; i++ {
		r := RandomRequest(rng, suite)
		valid := false
		for _, p := range NProcsChoices {
			if r.NProcs == p {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("NProcs %d not in paper domain", r.NProcs)
		}
		seenProcs[r.NProcs] = true
		seenBench[r.Spec.Name] = true
	}
	if len(seenProcs) != len(NProcsChoices) {
		t.Errorf("only %d of %d NPROCS values drawn", len(seenProcs), len(NProcsChoices))
	}
	if len(seenBench) != len(suite) {
		t.Errorf("only %d of %d benchmarks drawn", len(seenBench), len(suite))
	}
}

func mkJob(t *testing.T, name string, nprocs int, nodes int, cfg JobConfig) *Job {
	t.Helper()
	spec, err := SpecByName(NPB(ClassD), name)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]node.ID, nodes)
	for i := range ids {
		ids[i] = node.ID(i)
	}
	j, err := NewJob(1, Request{Spec: spec, NProcs: nprocs}, ids, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewJobValidation(t *testing.T) {
	spec := NPB(ClassD)[0]
	if _, err := NewJob(1, Request{Spec: spec, NProcs: 0}, []node.ID{0}, 0, JobConfig{}); err == nil {
		t.Error("zero NProcs accepted")
	}
	if _, err := NewJob(1, Request{Spec: spec, NProcs: 8}, nil, 0, JobConfig{}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := NewJob(1, Request{Spec: Spec{}, NProcs: 8}, []node.ID{0}, 0, JobConfig{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestJobFinishesAtReferenceUnthrottled(t *testing.T) {
	j := mkJob(t, "EP", 64, 8, JobConfig{})
	ref := j.ReferenceDuration()
	dt := time.Second
	var now time.Duration
	for !j.Done() {
		j.Advance(now, dt, 1.0)
		now += dt
		if now > 2*ref {
			t.Fatal("job did not finish in twice its reference time")
		}
	}
	if j.ActualDuration() != ref {
		t.Errorf("unthrottled duration = %v, want exactly ref %v (sub-tick interpolation)", j.ActualDuration(), ref)
	}
	if !j.Lossless(0.001) {
		t.Error("unthrottled job not lossless")
	}
	if j.Progress() != 1 {
		t.Errorf("progress = %v", j.Progress())
	}
}

func TestJobThrottledSlowdown(t *testing.T) {
	// EP at the bottom DVFS level (s = 1.6/2.93) should take ≈ 1/s times
	// longer (α = 1, CommDuty ≈ 0).
	j := mkJob(t, "EP", 64, 8, JobConfig{})
	s := 1.60 / 2.93
	dt := time.Second
	var now time.Duration
	for !j.Done() {
		j.Advance(now, dt, s)
		now += dt
	}
	wantRate := 0.98*s + 0.02
	want := float64(j.ReferenceDuration()) / wantRate
	if math.Abs(float64(j.ActualDuration())-want) > float64(time.Second) {
		t.Errorf("throttled duration = %v, want ≈%v", j.ActualDuration(), time.Duration(want))
	}
	if j.Lossless(0.001) {
		t.Error("heavily throttled job reported lossless")
	}
}

func TestCGLessSensitiveThanEP(t *testing.T) {
	ep := mkJob(t, "EP", 64, 8, JobConfig{})
	cg := mkJob(t, "CG", 64, 8, JobConfig{})
	s := 0.55
	if ep.Rate(s) >= cg.Rate(s) {
		t.Errorf("EP rate %v should drop below CG rate %v at slowdown", ep.Rate(s), cg.Rate(s))
	}
}

func TestRateBounds(t *testing.T) {
	j := mkJob(t, "LU", 64, 8, JobConfig{})
	if j.Rate(1) != 1 {
		t.Errorf("rate at full speed = %v, want 1", j.Rate(1))
	}
	if r := j.Rate(0); r < 0 || r > 1 {
		t.Errorf("rate at slowdown 0 = %v", r)
	}
	if j.Rate(2) != 1 {
		t.Error("slowdown above 1 not clamped")
	}
}

func TestAdvanceAfterDone(t *testing.T) {
	j := mkJob(t, "EP", 8, 1, JobConfig{})
	var now time.Duration
	for !j.Done() {
		j.Advance(now, time.Minute, 1)
		now += time.Minute
	}
	end := j.End()
	if j.Advance(now, time.Minute, 1) {
		t.Error("Advance returned true on finished job")
	}
	if j.End() != end {
		t.Error("end time moved after completion")
	}
}

func TestLoadComputeVsCommPhase(t *testing.T) {
	j := mkJob(t, "CG", 64, 8, JobConfig{}) // no rng: phase offset 0
	spec := j.Spec()
	// At t=0 member 0 is at phase position 0 < CommDuty·period: comm.
	comm := j.LoadAt(0, 0)
	// Middle of the compute span.
	computeAt := time.Duration((spec.CommDuty + (1-spec.CommDuty)/2) * float64(spec.PhasePeriod))
	comp := j.LoadAt(computeAt, 0)
	if comm.NICFrac <= comp.NICFrac {
		t.Errorf("comm NIC %v not above compute NIC %v", comm.NICFrac, comp.NICFrac)
	}
	if comm.CPUUtil >= comp.CPUUtil {
		t.Errorf("comm CPU %v not below compute CPU %v", comm.CPUUtil, comp.CPUUtil)
	}
}

func TestMemberStagger(t *testing.T) {
	j := mkJob(t, "CG", 256, 64, JobConfig{})
	// Probe near the comm/compute boundary (CG: comm spans the first
	// 5.04 s of a 12 s period; member skew spreads over 4.2 s): some
	// members must be in comm and others in compute — the whole job
	// never flips phase in lockstep.
	inComm, inComp := 0, 0
	for m := 0; m < 64; m++ {
		l := j.LoadAt(4*time.Second, m)
		if l.NICFrac > 0.3 {
			inComm++
		} else {
			inComp++
		}
	}
	if inComm == 0 || inComp == 0 {
		t.Errorf("no phase spread across members: comm=%d comp=%d", inComm, inComp)
	}
}

func TestRampUp(t *testing.T) {
	j := mkJob(t, "EP", 64, 8, JobConfig{RampUp: time.Minute})
	// EP's phase period is 40 s; 10 s and 130 s are at the same phase
	// position (both compute), 10 s inside the ramp and 130 s after it.
	early := j.LoadAt(10*time.Second, 0)
	late := j.LoadAt(130*time.Second, 0)
	if early.CPUUtil >= late.CPUUtil {
		t.Errorf("ramp: early load %v not below steady load %v", early.CPUUtil, late.CPUUtil)
	}
	if early.CPUUtil < 0.2 {
		t.Errorf("ramp floor too low: %v", early.CPUUtil)
	}
}

func TestLoadAfterDoneIsZero(t *testing.T) {
	j := mkJob(t, "EP", 8, 1, JobConfig{})
	for now := time.Duration(0); !j.Done(); now += time.Minute {
		j.Advance(now, time.Minute, 1)
	}
	if l := j.LoadAt(time.Hour, 0); l != (node.Load{}) {
		t.Errorf("finished job still imposes load %+v", l)
	}
}

func TestJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	j := mkJob(t, "EP", 64, 8, JobConfig{Jitter: 0.05, Rng: rng})
	spec := j.Spec()
	for i := 0; i < 1000; i++ {
		l := j.LoadAt(time.Duration(i)*time.Second+10*time.Minute, 0)
		if l.CPUUtil > spec.CPUUtil*1.051 {
			t.Fatalf("jitter exceeded bound: %v", l.CPUUtil)
		}
	}
}

func TestLosslessUnfinished(t *testing.T) {
	j := mkJob(t, "EP", 8, 1, JobConfig{})
	if j.Lossless(1) {
		t.Error("unfinished job reported lossless")
	}
	if j.ActualDuration() != 0 {
		t.Error("unfinished job has nonzero actual duration")
	}
}

// Property: progress is monotone and bounded for arbitrary slowdown
// sequences.
func TestProgressMonotoneProperty(t *testing.T) {
	f := func(slows []uint8) bool {
		j := mkJob(t, "SP", 64, 8, JobConfig{})
		prev := 0.0
		now := time.Duration(0)
		for _, sRaw := range slows {
			s := float64(sRaw) / 255
			j.Advance(now, 30*time.Second, s)
			now += 30 * time.Second
			p := j.Progress()
			if p < prev || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the faster of two identical jobs (higher slowdown factor)
// never finishes later.
func TestFasterNeverLaterProperty(t *testing.T) {
	f := func(sa, sb uint8) bool {
		fast, slow := float64(sa)/255, float64(sb)/255
		if fast < slow {
			fast, slow = slow, fast
		}
		j1 := mkJob(t, "BT", 64, 8, JobConfig{})
		j2 := mkJob(t, "BT", 64, 8, JobConfig{})
		now := time.Duration(0)
		limit := 100 * j1.ReferenceDuration()
		for (!j1.Done() || !j2.Done()) && now < limit {
			j1.Advance(now, time.Minute, fast)
			j2.Advance(now, time.Minute, slow)
			now += time.Minute
		}
		if !j1.Done() {
			// Both may stall at slowdown 0 only if CommDuty is 0.
			return !j2.Done()
		}
		return !j2.Done() || j1.End() <= j2.End()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNPBExtended(t *testing.T) {
	ext := NPBExtended(ClassD)
	if len(ext) != 8 {
		t.Fatalf("extended suite = %d, want 8", len(ext))
	}
	for _, name := range []string{"FT", "MG", "IS"} {
		s, err := SpecByName(ext, name)
		if err != nil {
			t.Errorf("missing %s", name)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// The paper's five benchmarks are unchanged and come first.
	if ext[0].Name != "EP" || ext[4].Name != "SP" {
		t.Error("paper suite not preserved as prefix")
	}
	// Class scaling applies to the extensions too.
	d, _ := SpecByName(NPBExtended(ClassD), "FT")
	c, _ := SpecByName(NPBExtended(ClassC), "FT")
	if math.Abs(float64(d.BaseDuration)/float64(c.BaseDuration)-16) > 0.01 {
		t.Error("class scaling broken for extended suite")
	}
}
