package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/node"
)

// JobID identifies a job across the system.
type JobID int

// Job is a running parallel application occupying a set of nodes. The model
// captures the three behaviours the capping architecture interacts with:
//
//   - bottleneck coupling (§IV.A): a well-balanced parallel job progresses
//     at the pace of its slowest node, so degrading one member node slows
//     the whole job as much as degrading all of them;
//   - DVFS response: progress scales as (f/f_max)^α during compute phases
//     while communication time is frequency-insensitive;
//   - phase structure: compute and communication phases alternate, which
//     both shapes per-device load (CPU-heavy vs NIC-heavy) and produces the
//     power variability the controller has to chase.
type Job struct {
	id     JobID
	req    Request
	nodes  []node.ID
	start  time.Duration
	refDur time.Duration

	phaseOffset time.Duration
	rampUp      time.Duration
	jitter      float64
	rng         *rand.Rand

	progress float64 // fraction of total work completed, [0,1]
	done     bool
	end      time.Duration
}

// JobConfig tunes job behaviour beyond the benchmark spec.
type JobConfig struct {
	// RampUp is how long the job takes to reach full power draw after
	// start (initialisation, data load). Gives change-based policies a
	// genuine rising edge to detect.
	RampUp time.Duration
	// Jitter is the relative amplitude of per-tick load noise.
	Jitter float64
	// Rng drives phase offset and jitter; nil gives a deterministic,
	// jitter-free job.
	Rng *rand.Rand
}

// NewJob creates a job from a request, placed on the given nodes, started
// at virtual time start.
func NewJob(id JobID, req Request, nodes []node.ID, start time.Duration, cfg JobConfig) (*Job, error) {
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	if req.NProcs <= 0 {
		return nil, fmt.Errorf("workload: job %d has NProcs=%d", id, req.NProcs)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workload: job %d has no nodes", id)
	}
	j := &Job{
		id:     id,
		req:    req,
		nodes:  append([]node.ID(nil), nodes...),
		start:  start,
		refDur: req.Spec.ReferenceDuration(req.NProcs),
		rampUp: cfg.RampUp,
		jitter: cfg.Jitter,
		rng:    cfg.Rng,
	}
	if cfg.Rng != nil {
		j.phaseOffset = time.Duration(cfg.Rng.Int63n(int64(req.Spec.PhasePeriod)))
	}
	return j, nil
}

// ID returns the job identifier.
func (j *Job) ID() JobID { return j.id }

// Spec returns the benchmark spec the job runs.
func (j *Job) Spec() Spec { return j.req.Spec }

// NProcs returns the job's process count.
func (j *Job) NProcs() int { return j.req.NProcs }

// Priority returns the job's priority; Privileged reports whether its
// nodes are pinned out of A_candidate while it runs (§II.A).
func (j *Job) Priority() int { return j.req.Priority }

// Privileged reports whether the job's member nodes must not be degraded.
func (j *Job) Privileged() bool { return j.req.Privileged() }

// Nodes returns the paper's Nodes(J): the nodes the job occupies.
func (j *Job) Nodes() []node.ID { return j.nodes }

// Start returns the virtual time the job was loaded onto the system.
func (j *Job) Start() time.Duration { return j.start }

// ReferenceDuration returns T_j, the full-frequency runtime.
func (j *Job) ReferenceDuration() time.Duration { return j.refDur }

// Progress returns the completed work fraction in [0,1].
func (j *Job) Progress() float64 { return j.progress }

// Done reports whether the job has finished.
func (j *Job) Done() bool { return j.done }

// End returns the completion time; zero until Done.
func (j *Job) End() time.Duration { return j.end }

// ActualDuration returns T_cap,j for a finished job.
func (j *Job) ActualDuration() time.Duration {
	if !j.done {
		return 0
	}
	return j.end - j.start
}

// Lossless reports whether the finished job ran without performance loss:
// its actual duration is within tol (relative) of the reference duration.
// The paper's CPLJ metric counts these.
func (j *Job) Lossless(tol float64) bool {
	if !j.done {
		return false
	}
	return float64(j.ActualDuration()) <= float64(j.refDur)*(1+tol)
}

// memberStagger is the fraction of the phase period across which the
// member nodes of a job are spread. On a real machine the nodes of an MPI
// job do not enter communication at exactly the same instant — network
// contention and pipeline structure skew them — so the job's aggregate
// power transitions over a few seconds instead of jumping in one tick.
const memberStagger = 0.35

// inCommPhase reports whether member node m of the job is in a
// communication phase at the given virtual time.
func (j *Job) inCommPhase(now time.Duration, member int) bool {
	if j.req.Spec.CommDuty <= 0 {
		return false
	}
	period := j.req.Spec.PhasePeriod
	skew := time.Duration(0)
	if n := len(j.nodes); n > 1 {
		skew = time.Duration(memberStagger * float64(period) * float64(member) / float64(n))
	}
	pos := (now + j.phaseOffset + skew) % period
	return float64(pos) < j.req.Spec.CommDuty*float64(period)
}

// rampFactor scales load during the start-up ramp.
func (j *Job) rampFactor(now time.Duration) float64 {
	if j.rampUp <= 0 {
		return 1
	}
	el := now - j.start
	if el >= j.rampUp {
		return 1
	}
	// Start at 30% draw and rise linearly — initialisation still burns
	// power, just less than the solve.
	return 0.3 + 0.7*float64(el)/float64(j.rampUp)
}

// noise returns a multiplicative jitter factor around 1.
func (j *Job) noise() float64 {
	if j.rng == nil || j.jitter == 0 {
		return 1
	}
	return 1 + (j.rng.Float64()*2-1)*j.jitter
}

// LoadAt computes the operating point the job imposes on its member-th
// node at the given virtual time. Member nodes carry the same mean load
// but their phase positions are staggered (see memberStagger).
func (j *Job) LoadAt(now time.Duration, member int) node.Load {
	if j.done {
		return node.Load{}
	}
	s := j.req.Spec
	ramp := j.rampFactor(now)
	if j.inCommPhase(now, member) {
		return node.Load{
			CPUUtil: clamp01(0.35 * s.CPUUtil * ramp * j.noise()),
			MemFrac: clamp01(s.MemFrac * ramp),
			NICFrac: clamp01(s.NICFrac * ramp * j.noise()),
		}
	}
	return node.Load{
		CPUUtil: clamp01(s.CPUUtil * ramp * j.noise()),
		MemFrac: clamp01(s.MemFrac * ramp),
		NICFrac: clamp01(0.08 * s.NICFrac * ramp * j.noise()),
	}
}

// Rate returns the job's instantaneous progress rate given the slowdown
// factor of its slowest member node (f/f_max of the bottleneck). The
// compute share scales as slowdown^α; the communication share is
// frequency-insensitive:
//
//	rate = (1 − CommDuty)·s^α + CommDuty
func (j *Job) Rate(minSlowdown float64) float64 {
	s := clamp01(minSlowdown)
	spec := j.req.Spec
	return (1-spec.CommDuty)*math.Pow(s, spec.Alpha) + spec.CommDuty
}

// Advance progresses the job by dt of virtual time (the tick starting at
// now) with the given bottleneck slowdown. When the remaining work
// completes inside the tick, the completion instant is interpolated within
// it, so job durations are not quantised to the tick period — an
// unthrottled job finishes in exactly its reference duration. It returns
// true if the job finished during this tick.
func (j *Job) Advance(now, dt time.Duration, minSlowdown float64) bool {
	if j.done {
		return false
	}
	inc := float64(dt) / float64(j.refDur) * j.Rate(minSlowdown)
	if j.progress+inc >= 1 {
		frac := 1.0
		if inc > 0 {
			frac = (1 - j.progress) / inc
		}
		j.progress = 1
		j.done = true
		j.end = now + time.Duration(frac*float64(dt))
		return true
	}
	j.progress += inc
	return false
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
