package experiment

import (
	"strings"
	"testing"
)

// TestBackendEquivalence is the E11 acceptance test: one seeded scenario
// scored on the sim and daemon backends must agree on the headline
// metrics within the documented tolerances. Under -short it runs the CI
// smoke scale (minutes of virtual time) so the race detector stays cheap;
// otherwise the full Quick scale.
func TestBackendEquivalence(t *testing.T) {
	sc := Quick()
	if testing.Short() {
		sc = ShortEquivalenceScale()
	}
	r, err := BackendEquivalence(sc, "mpc", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := EquivalenceTable(r).Render(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	if vs := r.Violations(); len(vs) > 0 {
		t.Errorf("backends diverge beyond tolerance: %v", vs)
	}
	if r.Samples == 0 || r.Acks == 0 {
		t.Errorf("daemon transport unused: samples=%d acks=%d", r.Samples, r.Acks)
	}
	if r.Sim.JobsDone == 0 || r.Daemon.JobsDone == 0 {
		t.Errorf("no jobs finished: sim=%.0f daemon=%.0f", r.Sim.JobsDone, r.Daemon.JobsDone)
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct {
		a, b, floor, want float64
	}{
		{100, 102, 1, 0.02},
		{0, 0, 1e-4, 0},
		{0, 5e-5, 1e-4, 0.5},
		{-10, -11, 1, 0.1},
	}
	for _, c := range cases {
		if got := relDelta(c.a, c.b, c.floor); !approxEq(got, c.want) {
			t.Errorf("relDelta(%v,%v,%v) = %v, want %v", c.a, c.b, c.floor, got, c.want)
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
