package experiment

import (
	"fmt"
	"math"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
)

// E11 backend equivalence: the same control law must produce the same
// capping behaviour whether it senses and actuates the plant in-process
// (backend "sim") or over the managerd/agentd wire protocol (backend
// "daemon"). The run is not bit-identical across transports — the daemon
// path draws its per-node power estimates from wire samples that arrive
// through the collector — so equivalence is scored on the paper's
// headline metrics within stated tolerances.
const (
	// TolPMax bounds the relative P_max difference (ISSUE acceptance: 2%).
	TolPMax = 0.02
	// TolPerformance bounds the relative Performance(cap) difference.
	TolPerformance = 0.02
	// TolCPLJ bounds the absolute CPLJ-fraction difference (the metric is
	// already a fraction of jobs, so absolute is the meaningful scale).
	TolCPLJ = 0.05
	// TolOverspend bounds the relative ΔP×T difference. Overspend is an
	// integral of rare excursions above P_max and therefore the noisiest
	// metric; near-zero values are compared on absolute watt-hours instead.
	TolOverspend = 0.10
)

// EquivalenceResult holds one policy's metrics on both backends plus the
// relative deltas the acceptance criteria are judged on.
type EquivalenceResult struct {
	Policy      string
	Sim, Daemon PolicyResult
	// Relative deltas |daemon−sim|/sim (CPLJ: absolute difference).
	DPMax, DPerformance, DCPLJ, DOverspend float64
	// Daemon-side transport totals, proving the wire path was exercised.
	Samples, Acks int64
}

// Within reports whether every delta is inside its tolerance.
func (r EquivalenceResult) Within() bool { return len(r.Violations()) == 0 }

// Violations lists the tolerance breaches, empty when equivalent.
func (r EquivalenceResult) Violations() []string {
	var v []string
	if r.DPMax > TolPMax {
		v = append(v, fmt.Sprintf("P_max delta %.4f > %.2f", r.DPMax, TolPMax))
	}
	if r.DPerformance > TolPerformance {
		v = append(v, fmt.Sprintf("performance delta %.4f > %.2f", r.DPerformance, TolPerformance))
	}
	if r.DCPLJ > TolCPLJ {
		v = append(v, fmt.Sprintf("CPLJ delta %.4f > %.2f", r.DCPLJ, TolCPLJ))
	}
	if r.DOverspend > TolOverspend {
		v = append(v, fmt.Sprintf("ΔP×T delta %.4f > %.2f", r.DOverspend, TolOverspend))
	}
	return v
}

// relDelta returns |b−a|/|a|, falling back to the absolute difference on
// the floor scale when a is (near) zero so that 0-vs-0 scores 0 rather
// than NaN and 0-vs-ε is judged on ε's own magnitude.
func relDelta(a, b, floor float64) float64 {
	d := math.Abs(b - a)
	if math.Abs(a) < floor {
		return d / floor
	}
	return d / math.Abs(a)
}

// BackendEquivalence runs one seeded scenario for the given policy on the
// sim backend and again on the daemon backend, and scores the deltas.
// mutate (optional) adjusts both configs identically before construction.
func BackendEquivalence(sc Scale, policy string, mutate func(*core.Config)) (EquivalenceResult, error) {
	if len(sc.Seeds) == 0 {
		return EquivalenceResult{}, fmt.Errorf("experiment: no seeds")
	}
	res := EquivalenceResult{Policy: policy}
	run := func(backendName string) (PolicyResult, error) {
		cfg := sc.baseConfig(sc.Seeds[0])
		cfg.PolicyName = policy
		cfg.Backend = backendName
		if mutate != nil {
			mutate(&cfg)
		}
		sys, err := core.New(cfg)
		if err != nil {
			return PolicyResult{}, fmt.Errorf("backend %s: %w", backendName, err)
		}
		defer sys.Close()
		r, err := sys.Run(sc.Eval)
		if err != nil {
			return PolicyResult{}, fmt.Errorf("backend %s: %w", backendName, err)
		}
		if d, ok := sys.Backend().(*backend.Daemon); ok {
			st := d.Status()
			res.Samples, res.Acks = st.SamplesReceived, int64(st.CommandAcks)
		}
		s := r.Summary
		return PolicyResult{
			Policy:      policy,
			PMax:        s.PMax,
			PMean:       s.PMean,
			Overspend:   s.Overspend,
			Performance: s.Performance,
			CPLJFrac:    s.CPLJFrac,
			JobsDone:    float64(s.JobsDone),
			RedEntries:  r.ManagerStats.RedEntries,
		}, nil
	}

	var err error
	if res.Sim, err = run("sim"); err != nil {
		return res, err
	}
	if res.Daemon, err = run("daemon"); err != nil {
		return res, err
	}

	res.DPMax = relDelta(float64(res.Sim.PMax), float64(res.Daemon.PMax), 1)
	res.DPerformance = relDelta(res.Sim.Performance, res.Daemon.Performance, 1e-6)
	res.DCPLJ = math.Abs(res.Daemon.CPLJFrac - res.Sim.CPLJFrac)
	// ΔP×T is normalised by P_max·T already; judge tiny values on an
	// absolute floor of 1e-4 to avoid amplifying numerical dust.
	res.DOverspend = relDelta(res.Sim.Overspend, res.Daemon.Overspend, 1e-4)
	return res, nil
}

// EquivalenceTable renders an E11 result side by side.
func EquivalenceTable(r EquivalenceResult) *Table {
	t := &Table{
		Title:  fmt.Sprintf("E11 backend equivalence (%s): sim vs daemon transport", r.Policy),
		Header: []string{"metric", "sim", "daemon", "delta", "tolerance", "verdict"},
	}
	verdict := func(d, tol float64) string {
		if d <= tol {
			return "ok"
		}
		return "VIOLATED"
	}
	t.AddRow("P_max",
		fmt.Sprintf("%.3f kW", r.Sim.PMax.KW()),
		fmt.Sprintf("%.3f kW", r.Daemon.PMax.KW()),
		f4(r.DPMax), f2(TolPMax), verdict(r.DPMax, TolPMax))
	t.AddRow("performance",
		f4(r.Sim.Performance), f4(r.Daemon.Performance),
		f4(r.DPerformance), f2(TolPerformance), verdict(r.DPerformance, TolPerformance))
	t.AddRow("CPLJ",
		f3(r.Sim.CPLJFrac), f3(r.Daemon.CPLJFrac),
		f4(r.DCPLJ), f2(TolCPLJ), verdict(r.DCPLJ, TolCPLJ))
	t.AddRow("ΔP×T",
		f4(r.Sim.Overspend), f4(r.Daemon.Overspend),
		f4(r.DOverspend), f2(TolOverspend), verdict(r.DOverspend, TolOverspend))
	t.AddRow("jobs",
		fmt.Sprintf("%.0f", r.Sim.JobsDone), fmt.Sprintf("%.0f", r.Daemon.JobsDone),
		"", "", "")
	return t
}

// ShortEquivalenceScale is the CI smoke variant of E11: same class and
// policy, minutes of virtual time so the race detector stays affordable.
func ShortEquivalenceScale() Scale {
	return Scale{Class: Quick().Class, Training: 10 * time.Minute, Eval: 20 * time.Minute, Seeds: []uint64{1}}
}
