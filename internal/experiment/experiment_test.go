package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// smallD is a reduced class-D scale that preserves the paper's regime
// (big spiky jobs, occasional throttling) while keeping tests fast.
func smallD() Scale {
	return Scale{Class: workload.ClassD, Training: 90 * time.Minute, Eval: 4 * time.Hour, Seeds: []uint64{1}}
}

func TestScalePresets(t *testing.T) {
	for _, sc := range []Scale{Fast(), Paper(), Quick()} {
		if sc.Eval <= 0 || sc.Training < 0 || len(sc.Seeds) == 0 {
			t.Errorf("bad preset %+v", sc)
		}
	}
	if Paper().Training != 24*time.Hour || Paper().Eval != 12*time.Hour {
		t.Error("Paper() must match §V.C (24 h training, 12 h evaluation)")
	}
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	rs, err := Figure7(smallD())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	byName := map[string]PolicyResult{}
	for _, r := range rs {
		byName[r.Policy] = r
	}
	none, mpc, hri := byName["none"], byName["mpc"], byName["hri"]

	// Paper: uncapped baseline is lossless.
	if none.Performance < 0.999 {
		t.Errorf("uncapped perf = %v", none.Performance)
	}
	// Paper: ≈2% performance loss under either policy.
	for _, r := range []PolicyResult{mpc, hri} {
		if r.Performance < 0.95 || r.Performance > 1.0 {
			t.Errorf("%s perf = %v, want ≈0.98", r.Policy, r.Performance)
		}
	}
	// Paper: maximal power reduced (≈10% on the testbed).
	for _, r := range []PolicyResult{mpc, hri} {
		if r.PMaxReduction < 0.03 {
			t.Errorf("%s peak cut = %v, want a clear reduction", r.Policy, r.PMaxReduction)
		}
	}
	// Paper: ΔP×T cut substantially (73% MPC, 66% HRI); require > 50%.
	for _, r := range []PolicyResult{mpc, hri} {
		if r.OverspendReduction < 0.5 {
			t.Errorf("%s ΔP×T cut = %v, want > 50%%", r.Policy, r.OverspendReduction)
		}
	}
	// Paper: MPC ahead of (or equal to) HRI on ΔP×T and CPLJ.
	if mpc.Overspend > hri.Overspend*1.1 {
		t.Errorf("MPC ΔP×T %v clearly worse than HRI %v", mpc.Overspend, hri.Overspend)
	}
	if mpc.CPLJFrac < hri.CPLJFrac {
		t.Errorf("CPLJ: MPC %v below HRI %v, paper has MPC ahead", mpc.CPLJFrac, hri.CPLJFrac)
	}
	// Paper: the red state is never entered under capping.
	for _, r := range []PolicyResult{mpc, hri} {
		if r.RedEntries != 0 {
			t.Errorf("%s entered red %d times, paper: never", r.Policy, r.RedEntries)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := Figure6(smallD(), []int{0, 32, 128}, []string{"mpc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Normalisation: k=0 is exactly 1.0.
	if pts[0].K != 0 || pts[0].OverspendNorm != 1 || pts[0].PMaxNorm != 1 {
		t.Errorf("baseline point = %+v", pts[0])
	}
	// Paper: more candidates → smaller ΔP×T.
	if !(pts[2].OverspendNorm < pts[1].OverspendNorm && pts[1].OverspendNorm < 1) {
		t.Errorf("ΔP×T not improving with candidate size: %v, %v, %v",
			pts[0].OverspendNorm, pts[1].OverspendNorm, pts[2].OverspendNorm)
	}
	// Peak also improves with a full candidate set.
	if pts[2].PMaxNorm >= 1 {
		t.Errorf("full candidate set did not cut the peak: %v", pts[2].PMaxNorm)
	}
}

func TestFigure5Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon measurement")
	}
	cfg := Figure5Config{
		Sizes:        []int{0, 16, 64},
		PerSize:      1500 * time.Millisecond,
		ControlEvery: 50 * time.Millisecond,
	}
	pts, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Cycles == 0 {
			t.Fatalf("no cycles ran for n=%d", p.Agents)
		}
		if p.CPUUtil < 0 || p.CPUUtil > 1 {
			t.Errorf("n=%d utilisation %v out of range", p.Agents, p.CPUUtil)
		}
	}
	// Paper: cost rises with the number of monitored nodes. Timing noise
	// exists, so require the ends of the curve to order strictly.
	if pts[2].CPUUtil <= pts[0].CPUUtil {
		t.Errorf("manager cost not rising: %v → %v", pts[0].CPUUtil, pts[2].CPUUtil)
	}
}

func TestThresholdsRule(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	rs, err := Thresholds(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.PHOverPeak < 0.90 || r.PHOverPeak > 0.94 {
			t.Errorf("seed %d: PH/peak = %v, want ≈0.93", r.Seed, r.PHOverPeak)
		}
		if r.PLOverPeak < 0.81 || r.PLOverPeak > 0.85 {
			t.Errorf("seed %d: PL/peak = %v, want ≈0.84", r.Seed, r.PLOverPeak)
		}
	}
}

func TestFaultsGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := Quick()
	pts, err := Faults(sc, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Capping must still reduce overspend even with 30% sample loss —
	// and must not destroy performance by orphaning degraded nodes
	// (a lost sample once caused exactly that).
	for _, p := range pts {
		if p.OverspendReduction < 0.2 {
			t.Errorf("drop=%v: ΔP×T cut %v, capping collapsed under faults", p.DropRate, p.OverspendReduction)
		}
		if p.Performance < 0.93 {
			t.Errorf("drop=%v: perf %v, degraded nodes orphaned", p.DropRate, p.Performance)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := Quick()
	tg, err := AblationTg(sc, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tg) != 2 {
		t.Error("Tg sweep size")
	}
	pd, err := AblationPeriod(sc, []time.Duration{time.Second, 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd) != 2 {
		t.Error("period sweep size")
	}
	mg, err := AblationMargins(sc, [][2]float64{{0.16, 0.07}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mg) != 1 {
		t.Error("margin sweep size")
	}
	// Render all ablation tables to exercise the formatting path.
	var buf bytes.Buffer
	for _, tab := range []*Table{AblationTgTable(tg), AblationPeriodTable(pd), AblationMarginsTable(mg)} {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("tables rendered empty")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "long-header", "c"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", "1", "22")
	tab.AddRow("yyyy", "2", "3")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "T" || !strings.HasPrefix(lines[1], "=") {
		t.Errorf("title rendering: %q", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("notes missing")
	}
	// Column alignment: header and rows share the first column width.
	if !strings.Contains(out, "yyyy  2") {
		t.Errorf("alignment broken:\n%s", out)
	}
}

func TestComparePoliciesNeedsSeeds(t *testing.T) {
	sc := Quick()
	sc.Seeds = nil
	if _, err := ComparePolicies(sc, []string{"none"}); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestFigure5ConfigValidation(t *testing.T) {
	if _, err := Figure5(Figure5Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPolicyTableRendering(t *testing.T) {
	rs := []PolicyResult{{Policy: "mpc", Performance: 0.98, CPLJFrac: 0.7}}
	var buf bytes.Buffer
	if err := PolicyTable("Figure 7", rs).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mpc") {
		t.Error("policy row missing")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := &Table{
		Title:  "My Table",
		Header: []string{"a", "b"},
		Notes:  []string{"hello"},
	}
	tab.AddRow("x|y", "2")
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### My Table", "| a | b |", "| --- | --- |", `x\|y`, "*hello*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
