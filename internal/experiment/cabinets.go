package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/units"
)

// CabinetPoint is one (placement, policy) cell of the distribution study.
type CabinetPoint struct {
	Placement string
	Policy    string
	PolicyResult
	HottestPeak   units.Watts
	PeakImbalance float64
	TripRisk      float64
}

// CabinetStudy examines the power-distribution hierarchy beneath the
// global budget (extension E6): the cluster is laid out in 4 cabinets
// with individual PDU breaker ratings, and job placement either packs
// jobs into contiguous racks (first-fit, the default batch behaviour) or
// spreads each job across cabinets. A globally capped system can still
// concentrate load in one rack; placement is the lever that controls the
// per-cabinet peak and breaker-trip exposure.
func CabinetStudy(sc Scale) ([]CabinetPoint, error) {
	type setup struct{ placement, policy string }
	setups := []setup{
		{"firstfit", "none"},
		{"firstfit", "mpc"},
		{"spread", "none"},
		{"spread", "mpc"},
	}
	var out []CabinetPoint
	for _, st := range setups {
		st := st
		pt := CabinetPoint{Placement: st.placement, Policy: st.policy}
		var hot, imb, trip, pmax, perf float64
		for _, seed := range sc.Seeds {
			cfg := sc.baseConfig(seed)
			cfg.PolicyName = st.policy
			cfg.Cabinets = 4
			cfg.Placement = st.placement
			sys, err := core.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("cabinets %s/%s: %w", st.placement, st.policy, err)
			}
			r, err := sys.Run(sc.Eval)
			if err != nil {
				return nil, err
			}
			if r.Cabinets == nil {
				return nil, fmt.Errorf("experiment: cabinet summary missing")
			}
			hottest := 0.0
			for _, c := range r.Cabinets.Cabinets {
				if float64(c.Peak) > hottest {
					hottest = float64(c.Peak)
				}
			}
			hot += hottest
			imb += r.Cabinets.PeakImbalance
			trip += r.Cabinets.TripRiskFraction
			pmax += float64(r.Summary.PMax)
			perf += r.Summary.Performance
		}
		n := float64(len(sc.Seeds))
		pt.HottestPeak = units.Watts(hot / n)
		pt.PeakImbalance = imb / n
		pt.TripRisk = trip / n
		pt.PMax = units.Watts(pmax / n)
		pt.Performance = perf / n
		out = append(out, pt)
	}
	return out, nil
}

// CabinetTable renders the study.
func CabinetTable(pts []CabinetPoint) *Table {
	t := &Table{
		Title:  "Extension E6: power distribution — placement vs per-cabinet peaks (4 cabinets)",
		Header: []string{"placement", "policy", "hottest cab", "imbalance", "trip risk", "perf"},
		Notes: []string{
			"imbalance = hottest cabinet peak / mean cabinet peak (1.0 = balanced racks)",
			"trip risk = fraction of intervals with a cabinet above its breaker rating",
		},
	}
	for _, p := range pts {
		t.AddRow(p.Placement, p.Policy,
			fmt.Sprintf("%.2f kW", p.HottestPeak.KW()),
			f3(p.PeakImbalance), pct(p.TripRisk), f4(p.Performance))
	}
	return t
}
