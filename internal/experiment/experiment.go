package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

// Scale sets the fidelity/runtime trade-off of the simulation harnesses.
type Scale struct {
	// Class is the NPB problem class.
	Class workload.Class
	// Training is the uncapped threshold-learning period before each
	// evaluation window.
	Training time.Duration
	// Eval is the measured window (the paper uses 12 h per policy).
	Eval time.Duration
	// Seeds are averaged over; more seeds smooth the peak statistics.
	Seeds []uint64
}

// Fast returns a scale that reproduces the paper's shapes in tens of
// seconds: class D workload, 2 h training, 6 h evaluation, two seeds.
func Fast() Scale {
	return Scale{Class: workload.ClassD, Training: 2 * time.Hour, Eval: 6 * time.Hour, Seeds: []uint64{1, 2}}
}

// Paper returns the paper-fidelity scale: 24 h training and 12 h
// evaluation per policy (§V.C), three seeds.
func Paper() Scale {
	return Scale{Class: workload.ClassD, Training: 24 * time.Hour, Eval: 12 * time.Hour, Seeds: []uint64{1, 2, 3}}
}

// Quick returns a unit-test scale (class C, minutes of virtual time).
func Quick() Scale {
	return Scale{Class: workload.ClassC, Training: 30 * time.Minute, Eval: time.Hour, Seeds: []uint64{1}}
}

// baseConfig returns the shared experiment configuration at this scale.
func (sc Scale) baseConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Class = sc.Class
	cfg.Training = sc.Training
	return cfg
}

// PolicyResult summarises one policy's averaged behaviour.
type PolicyResult struct {
	Policy string
	// Averages over seeds.
	PMax        units.Watts
	PMean       units.Watts
	Overspend   float64 // ΔP×T against the provision capability
	Performance float64
	CPLJFrac    float64
	JobsDone    float64
	// Worst case over seeds.
	RedEntries int
	// Against the uncapped baseline of the same seeds (filled by the
	// comparison harnesses).
	PMaxReduction      float64 // 1 − PMax/PMax_uncapped
	OverspendReduction float64 // 1 − ΔP×T/ΔP×T_uncapped
}

// runPolicy executes the scenario for one policy across the scale's seeds
// and averages. mutate (optional) adjusts the config before construction.
func runPolicy(sc Scale, policy string, mutate func(*core.Config)) (PolicyResult, error) {
	if len(sc.Seeds) == 0 {
		return PolicyResult{}, fmt.Errorf("experiment: no seeds")
	}
	res := PolicyResult{Policy: policy}
	var pmax, pmean, over, perf, cplj, jobs float64
	for _, seed := range sc.Seeds {
		cfg := sc.baseConfig(seed)
		cfg.PolicyName = policy
		if mutate != nil {
			mutate(&cfg)
		}
		sys, err := core.New(cfg)
		if err != nil {
			return res, err
		}
		r, err := sys.Run(sc.Eval)
		if err != nil {
			return res, err
		}
		s := r.Summary
		pmax += float64(s.PMax)
		pmean += float64(s.PMean)
		over += s.Overspend
		if !math.IsNaN(s.Performance) {
			perf += s.Performance
		}
		if !math.IsNaN(s.CPLJFrac) {
			cplj += s.CPLJFrac
		}
		jobs += float64(s.JobsDone)
		if r.ManagerStats.RedEntries > res.RedEntries {
			res.RedEntries = r.ManagerStats.RedEntries
		}
	}
	n := float64(len(sc.Seeds))
	res.PMax = units.Watts(pmax / n)
	res.PMean = units.Watts(pmean / n)
	res.Overspend = over / n
	res.Performance = perf / n
	res.CPLJFrac = cplj / n
	res.JobsDone = jobs / n
	return res, nil
}

// relativise fills the against-baseline reductions.
func relativise(baseline PolicyResult, rs []PolicyResult) {
	for i := range rs {
		if baseline.PMax > 0 {
			rs[i].PMaxReduction = 1 - float64(rs[i].PMax)/float64(baseline.PMax)
		}
		if baseline.Overspend > 0 {
			rs[i].OverspendReduction = 1 - rs[i].Overspend/baseline.Overspend
		}
	}
}

// Figure7 reproduces the paper's Figure 7: the uncapped baseline against
// the MPC and HRI policies with all 128 nodes in A_candidate. Paper
// findings: ≈2% performance loss under either policy, ≈10% maximal power
// reduction, ΔP×T reduced by 73% (MPC) and 66% (HRI), CPLJ slightly
// favouring MPC, and the red state never entered.
func Figure7(sc Scale) ([]PolicyResult, error) {
	return ComparePolicies(sc, []string{"none", "mpc", "hri"})
}

// PolicyFamily runs the full §IV policy family (the paper's future work):
// state-based MPC, MPC-C, LPC, LPC-C, BFP and change-based HRI, HRI-C,
// plus the none/all/random baselines.
func PolicyFamily(sc Scale) ([]PolicyResult, error) {
	return ComparePolicies(sc, []string{
		"none", "mpc", "mpc-c", "lpc", "lpc-c", "bfp", "hri", "hri-c", "mincost", "random", "all",
	})
}

// ComparePolicies runs the named policies on the Figure 7 scenario,
// in parallel across policies (each run is an independent simulation).
// The first entry should be "none" (or another baseline) for the
// reductions to be meaningful.
func ComparePolicies(sc Scale, policies []string) ([]PolicyResult, error) {
	out := make([]PolicyResult, len(policies))
	errs := make([]error, len(policies))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i, p := range policies {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := runPolicy(sc, p, nil)
			if err != nil {
				errs[i] = fmt.Errorf("policy %s: %w", p, err)
				return
			}
			out[i] = r
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(out) > 0 {
		relativise(out[0], out)
	}
	return out, nil
}

// maxParallel bounds concurrent simulations: each run is CPU-bound, so
// more workers than cores only thrashes.
func maxParallel() int {
	n := runtime.NumCPU()
	if n < 1 {
		return 1
	}
	return n
}

// PolicyTable renders policy results.
func PolicyTable(title string, rs []PolicyResult) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "Pmax", "Pmax cut", "ΔP×T", "ΔP×T cut", "perf", "CPLJ", "jobs", "red"},
	}
	for _, r := range rs {
		t.AddRow(
			r.Policy,
			fmt.Sprintf("%.2f kW", r.PMax.KW()),
			pct(r.PMaxReduction),
			f4(r.Overspend),
			pct(r.OverspendReduction),
			f4(r.Performance),
			f3(r.CPLJFrac),
			fmt.Sprintf("%.0f", r.JobsDone),
			fmt.Sprintf("%d", r.RedEntries),
		)
	}
	return t
}

// FaultPoint is one fault-injection result.
type FaultPoint struct {
	DropRate float64
	PolicyResult
}

// Faults sweeps agent sample-loss rates under MPC (extension E2): the
// architecture should degrade gracefully — capping keeps working with
// stale/missing node views, at slightly reduced effectiveness.
func Faults(sc Scale, rates []float64) ([]FaultPoint, error) {
	baseline, err := runPolicy(sc, "none", nil)
	if err != nil {
		return nil, err
	}
	out := make([]FaultPoint, 0, len(rates))
	for _, rate := range rates {
		rate := rate
		r, err := runPolicy(sc, "mpc", func(cfg *core.Config) {
			cfg.AgentDropRate = rate
		})
		if err != nil {
			return nil, err
		}
		rs := []PolicyResult{r}
		relativise(baseline, rs)
		out = append(out, FaultPoint{DropRate: rate, PolicyResult: rs[0]})
	}
	return out, nil
}

// FaultTable renders fault sweep results.
func FaultTable(ps []FaultPoint) *Table {
	t := &Table{
		Title:  "Fault injection: agent sample loss under MPC",
		Header: []string{"drop rate", "Pmax", "ΔP×T cut", "perf", "red"},
	}
	for _, p := range ps {
		t.AddRow(pct(p.DropRate), fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.OverspendReduction), f4(p.Performance), fmt.Sprintf("%d", p.RedEntries))
	}
	return t
}

// ThresholdResult captures the §III.A learning outcome of one run.
type ThresholdResult struct {
	Seed         uint64
	TrainingPeak units.Watts
	PL, PH       units.Watts
	PLOverPeak   float64
	PHOverPeak   float64
}

// Thresholds verifies the threshold learning rule on uncapped training
// runs: P_H must equal 93% and P_L 84% of the observed training peak.
func Thresholds(sc Scale) ([]ThresholdResult, error) {
	out := make([]ThresholdResult, 0, len(sc.Seeds))
	for _, seed := range sc.Seeds {
		cfg := sc.baseConfig(seed)
		cfg.PolicyName = "none"
		sys, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		r, err := sys.Run(sc.Eval)
		if err != nil {
			return nil, err
		}
		tr := ThresholdResult{
			Seed:         seed,
			TrainingPeak: r.TrainingPeak,
			PL:           r.Thresholds.PL,
			PH:           r.Thresholds.PH,
		}
		if r.TrainingPeak > 0 {
			tr.PLOverPeak = float64(r.Thresholds.PL) / float64(r.TrainingPeak)
			tr.PHOverPeak = float64(r.Thresholds.PH) / float64(r.TrainingPeak)
		}
		out = append(out, tr)
	}
	return out, nil
}

// ThresholdTable renders threshold learning results.
func ThresholdTable(rs []ThresholdResult) *Table {
	t := &Table{
		Title:  "Threshold learning (§III.A): P_H = 93%·P_peak, P_L = 84%·P_peak",
		Header: []string{"seed", "peak", "P_L", "P_H", "P_L/peak", "P_H/peak"},
	}
	for _, r := range rs {
		t.AddRow(fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%.2f kW", r.TrainingPeak.KW()),
			fmt.Sprintf("%.2f kW", r.PL.KW()),
			fmt.Sprintf("%.2f kW", r.PH.KW()),
			f3(r.PLOverPeak), f3(r.PHOverPeak))
	}
	return t
}
