package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/thermal"
	"repro/internal/units"
)

// ThermalPoint is one policy's thermal outcome.
type ThermalPoint struct {
	Policy string
	PolicyResult
	PeakC             float64
	MeanFinalC        float64
	FailureMultiplier float64
	CoolingEnergy     units.Joules
}

// ThermalStudy runs the §I.A motivation quantitatively: with the thermal
// model enabled (RC temperatures, temperature→power leakage, the Feng
// failure-doubling rule and the LLNL 0.7 W/W cooling overhead), compare
// the uncapped baseline against capping policies on peak temperature,
// expected failure-rate multiplier and cooling energy. This is the
// physical meaning the paper assigns to ΔP×T — "the accumulative thermal
// impact caused by overspending power budget" — made explicit.
func ThermalStudy(sc Scale, policies []string) ([]ThermalPoint, error) {
	if len(policies) == 0 {
		policies = []string{"none", "mpc", "hri"}
	}
	var out []ThermalPoint
	var baseline *ThermalPoint
	for _, pol := range policies {
		pol := pol
		var sum *thermal.Summary
		pr := PolicyResult{Policy: pol}
		var pmax, over, perf float64
		for _, seed := range sc.Seeds {
			cfg := sc.baseConfig(seed)
			cfg.PolicyName = pol
			cfg.ThermalEnabled = true
			sys, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			r, err := sys.Run(sc.Eval)
			if err != nil {
				return nil, err
			}
			if r.Thermal == nil {
				return nil, fmt.Errorf("experiment: thermal summary missing")
			}
			if sum == nil {
				sum = r.Thermal
			} else {
				// Average across seeds.
				sum.PeakC = (sum.PeakC + r.Thermal.PeakC) / 2
				sum.MeanFinalC = (sum.MeanFinalC + r.Thermal.MeanFinalC) / 2
				sum.FailureMultiplier = (sum.FailureMultiplier + r.Thermal.FailureMultiplier) / 2
				sum.CoolingEnergy = (sum.CoolingEnergy + r.Thermal.CoolingEnergy) / 2
			}
			pmax += float64(r.Summary.PMax)
			over += r.Summary.Overspend
			perf += r.Summary.Performance
		}
		n := float64(len(sc.Seeds))
		pr.PMax = units.Watts(pmax / n)
		pr.Overspend = over / n
		pr.Performance = perf / n
		pt := ThermalPoint{
			Policy:            pol,
			PolicyResult:      pr,
			PeakC:             sum.PeakC,
			MeanFinalC:        sum.MeanFinalC,
			FailureMultiplier: sum.FailureMultiplier,
			CoolingEnergy:     sum.CoolingEnergy,
		}
		out = append(out, pt)
		if baseline == nil {
			baseline = &out[0]
		}
	}
	return out, nil
}

// ThermalTable renders the study.
func ThermalTable(pts []ThermalPoint) *Table {
	t := &Table{
		Title:  "Thermal study (§I.A motivation): capping's effect on heat, reliability, cooling",
		Header: []string{"policy", "Pmax", "peak °C", "fail ×", "cooling", "perf"},
		Notes: []string{
			"fail × = time-averaged failure-rate multiplier (doubles per +10 °C, Feng)",
			"cooling = energy the plant spends removing heat (0.7 W per IT watt, LLNL)",
		},
	}
	for _, p := range pts {
		t.AddRow(p.Policy,
			fmt.Sprintf("%.2f kW", p.PMax.KW()),
			fmt.Sprintf("%.1f", p.PeakC),
			fmt.Sprintf("%.3f", p.FailureMultiplier),
			fmt.Sprintf("%.1f kWh", p.CoolingEnergy.KWh()),
			f4(p.Performance))
	}
	return t
}
