// Package experiment contains the reproduction harnesses for the paper's
// evaluation (§V): Figure 5 (global manager scalability, measured on the
// real agent/manager daemons), Figure 6 (capping effect vs candidate set
// size), Figure 7 (policy comparison on the full 128-node system), the
// threshold-learning behaviour of §III.A, the extended policy family the
// paper lists as future work, fault-injection robustness runs, and
// ablations over the design parameters (T_g, control period, threshold
// margins).
//
// Every harness returns structured results; cmd/powfigures renders them as
// the tables/series the paper reports, and EXPERIMENTS.md records
// paper-vs-measured.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the table as GitHub-flavoured markdown, the form
// EXPERIMENTS.md embeds.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
