package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// TgPoint is one T_g ablation cell.
type TgPoint struct {
	Tg int
	PolicyResult
}

// AblationTg sweeps Algorithm 1's steady-green patience T_g under MPC.
// Small T_g restores aggressively (risking green/yellow oscillation and
// more throttle churn); large T_g holds nodes degraded long after the
// spike passed (costing performance). The paper fixes T_g = 10.
func AblationTg(sc Scale, values []int) ([]TgPoint, error) {
	if len(values) == 0 {
		values = []int{1, 5, 10, 20, 50}
	}
	baseline, err := runPolicy(sc, "none", nil)
	if err != nil {
		return nil, err
	}
	var out []TgPoint
	for _, tg := range values {
		tg := tg
		r, err := runPolicy(sc, "mpc", func(cfg *core.Config) { cfg.Tg = tg })
		if err != nil {
			return nil, err
		}
		rs := []PolicyResult{r}
		relativise(baseline, rs)
		out = append(out, TgPoint{Tg: tg, PolicyResult: rs[0]})
	}
	return out, nil
}

// AblationTgTable renders the T_g sweep.
func AblationTgTable(pts []TgPoint) *Table {
	t := &Table{
		Title:  "Ablation A1: steady-green patience T_g (MPC)",
		Header: []string{"T_g", "Pmax", "ΔP×T cut", "perf", "CPLJ", "red"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.Tg), fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.OverspendReduction), f4(p.Performance), f3(p.CPLJFrac),
			fmt.Sprintf("%d", p.RedEntries))
	}
	return t
}

// PeriodPoint is one control-period ablation cell.
type PeriodPoint struct {
	Period time.Duration
	PolicyResult
}

// AblationPeriod sweeps the control cycle τ under MPC. Longer cycles
// react later to spikes (more overspend); shorter cycles cost more
// management overhead (Figure 5) for diminishing control benefit.
func AblationPeriod(sc Scale, values []time.Duration) ([]PeriodPoint, error) {
	if len(values) == 0 {
		values = []time.Duration{
			500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		}
	}
	baseline, err := runPolicy(sc, "none", nil)
	if err != nil {
		return nil, err
	}
	var out []PeriodPoint
	for _, d := range values {
		d := d
		r, err := runPolicy(sc, "mpc", func(cfg *core.Config) {
			cfg.ControlPeriod = d
			if d < cfg.TickPeriod {
				cfg.TickPeriod = d
			}
		})
		if err != nil {
			return nil, err
		}
		rs := []PolicyResult{r}
		relativise(baseline, rs)
		out = append(out, PeriodPoint{Period: d, PolicyResult: rs[0]})
	}
	return out, nil
}

// AblationPeriodTable renders the control period sweep.
func AblationPeriodTable(pts []PeriodPoint) *Table {
	t := &Table{
		Title:  "Ablation A2: control cycle period τ (MPC)",
		Header: []string{"τ", "Pmax", "ΔP×T cut", "perf", "red"},
	}
	for _, p := range pts {
		t.AddRow(p.Period.String(), fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.OverspendReduction), f4(p.Performance), fmt.Sprintf("%d", p.RedEntries))
	}
	return t
}

// MarginPoint is one threshold-margin ablation cell.
type MarginPoint struct {
	MarginL, MarginH float64
	PolicyResult
}

// AblationMargins sweeps the threshold derivation margins around the
// paper's 16%/7% (from Fan et al.). Narrow yellow bands (marginL close to
// marginH) leave little reaction room before red; wide bands throttle
// earlier and cost performance.
func AblationMargins(sc Scale, pairs [][2]float64) ([]MarginPoint, error) {
	if len(pairs) == 0 {
		pairs = [][2]float64{{0.10, 0.05}, {0.16, 0.07}, {0.20, 0.07}, {0.24, 0.12}}
	}
	baseline, err := runPolicy(sc, "none", nil)
	if err != nil {
		return nil, err
	}
	var out []MarginPoint
	for _, p := range pairs {
		p := p
		r, err := runPolicy(sc, "mpc", func(cfg *core.Config) {
			cfg.MarginL, cfg.MarginH = p[0], p[1]
		})
		if err != nil {
			return nil, err
		}
		rs := []PolicyResult{r}
		relativise(baseline, rs)
		out = append(out, MarginPoint{MarginL: p[0], MarginH: p[1], PolicyResult: rs[0]})
	}
	return out, nil
}

// AblationMarginsTable renders the margin sweep.
func AblationMarginsTable(pts []MarginPoint) *Table {
	t := &Table{
		Title:  "Ablation A3: threshold margins (MPC; paper uses 16%/7%)",
		Header: []string{"marginL", "marginH", "Pmax", "ΔP×T cut", "perf", "red"},
	}
	for _, p := range pts {
		t.AddRow(pct(p.MarginL), pct(p.MarginH), fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.OverspendReduction), f4(p.Performance), fmt.Sprintf("%d", p.RedEntries))
	}
	return t
}
