package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
)

// FairnessPoint is one policy's fairness outcome.
type FairnessPoint struct {
	Policy string
	// Jain is Jain's fairness index over per-job slowdown losses
	// (1 = losses shared evenly, →1/n = one job bears everything).
	Jain float64
	// MaxLoss is the worst single job's relative slowdown.
	MaxLoss float64
	// Performance/CPLJ for context.
	Performance float64
	CPLJFrac    float64
	// PerBenchmark breaks the outcome down by workload.
	PerBenchmark []metrics.BenchmarkBreakdown
}

// FairnessStudy measures the §IV fairness argument: the paper holds that
// state-based MPC "is not fair when the targeted job does not cause the
// problem" and motivates change-based HRI as the fairer policy that
// "punishes the job that causes the problem and balances the effect among
// all nodes". This study computes Jain's index over per-job slowdown
// losses for each policy, plus the per-benchmark breakdown showing which
// workloads pay.
func FairnessStudy(sc Scale, policies []string) ([]FairnessPoint, error) {
	if len(policies) == 0 {
		policies = []string{"mpc", "hri", "mincost", "random", "all"}
	}
	var out []FairnessPoint
	for _, pol := range policies {
		pt := FairnessPoint{Policy: pol}
		var jain, maxl, perf, cplj float64
		jn := 0
		for _, seed := range sc.Seeds {
			cfg := sc.baseConfig(seed)
			cfg.PolicyName = pol
			sys, err := core.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("fairness %s: %w", pol, err)
			}
			r, err := sys.Run(sc.Eval)
			if err != nil {
				return nil, err
			}
			if j := metrics.JainFairness(r.Jobs); !math.IsNaN(j) {
				jain += j
				jn++
			}
			if m := metrics.MaxSlowdownLoss(r.Jobs); m > maxl {
				maxl = m
			}
			perf += r.Summary.Performance
			cplj += r.Summary.CPLJFrac
			if pt.PerBenchmark == nil {
				pt.PerBenchmark = metrics.ByBenchmark(r.Jobs, metrics.DefaultLosslessTol)
			}
		}
		n := float64(len(sc.Seeds))
		if jn > 0 {
			pt.Jain = jain / float64(jn)
		}
		pt.MaxLoss = maxl
		pt.Performance = perf / n
		pt.CPLJFrac = cplj / n
		out = append(out, pt)
	}
	return out, nil
}

// FairnessTable renders the study.
func FairnessTable(pts []FairnessPoint) *Table {
	t := &Table{
		Title:  "Fairness study (§IV): who pays for power capping",
		Header: []string{"policy", "Jain", "max loss", "perf", "CPLJ"},
		Notes: []string{
			"Jain's index over per-job slowdown losses: 1 = pain shared evenly",
			"paper's claim: change-based HRI is fairer than state-based MPC",
		},
	}
	for _, p := range pts {
		t.AddRow(p.Policy, f3(p.Jain), pct(p.MaxLoss), f4(p.Performance), f3(p.CPLJFrac))
	}
	return t
}

// BenchmarkTable renders one policy's per-benchmark breakdown.
func BenchmarkTable(policy string, rows []metrics.BenchmarkBreakdown) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Per-benchmark outcome under %s", policy),
		Header: []string{"benchmark", "jobs", "perf", "CPLJ", "max loss"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, fmt.Sprintf("%d", r.Jobs), f4(r.Performance),
			f3(r.CPLJFrac), pct(r.MaxLoss))
	}
	return t
}
