package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestThermalStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := ThermalStudy(Quick(), []string{"none", "mpc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	none, mpc := pts[0], pts[1]
	// §I.A: capping must reduce peak temperature, expected failures and
	// cooling energy.
	if mpc.PeakC >= none.PeakC {
		t.Errorf("capped peak %.1f °C not below uncapped %.1f °C", mpc.PeakC, none.PeakC)
	}
	if mpc.FailureMultiplier >= none.FailureMultiplier {
		t.Errorf("capped failure multiplier %.3f not below uncapped %.3f",
			mpc.FailureMultiplier, none.FailureMultiplier)
	}
	if mpc.CoolingEnergy >= none.CoolingEnergy {
		t.Errorf("capped cooling %.1f kWh not below uncapped %.1f kWh",
			mpc.CoolingEnergy.KWh(), none.CoolingEnergy.KWh())
	}
	// Temperatures must be physically plausible for this fleet.
	for _, p := range pts {
		if p.PeakC < 30 || p.PeakC > 60 {
			t.Errorf("%s peak %.1f °C implausible", p.Policy, p.PeakC)
		}
	}
	var buf bytes.Buffer
	if err := ThermalTable(pts).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Thermal study") {
		t.Error("table rendering")
	}
}

func TestControllerStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := ControllerStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	byName := map[string]ControllerPoint{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	alg1 := byName["algorithm1+mpc"]
	fb := byName["feedback-pi"]
	tl := byName["twolevel-uniform"]
	// All controllers must actually control.
	if alg1.Moves == 0 || fb.Moves == 0 || tl.Moves == 0 {
		t.Fatalf("inert controller: alg1=%v fb=%v twolevel=%v", alg1.Moves, fb.Moves, tl.Moves)
	}
	// The two-level baseline must also cut overspend (it enforces hard
	// local budgets).
	if tl.OverspendReduction <= 0 {
		t.Errorf("two-level cut = %v", tl.OverspendReduction)
	}
	// The paper's architecture must beat the indiscriminate baseline on
	// overspend control (its central claim).
	if alg1.OverspendReduction <= fb.OverspendReduction {
		t.Errorf("Algorithm 1 ΔP×T cut %.2f not above feedback %.2f",
			alg1.OverspendReduction, fb.OverspendReduction)
	}
	// No controller may destroy performance outright.
	for _, p := range []ControllerPoint{alg1, fb} {
		if p.Performance < 0.95 {
			t.Errorf("%s perf = %v", p.Name, p.Performance)
		}
	}
	var buf bytes.Buffer
	if err := ControllerTable(pts).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "feedback-pi") {
		t.Error("table rendering")
	}
}

func TestPrivilegedJobsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := PrivilegedJobs(Quick(), []float64{0, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Pinning more work out of A_candidate must weaken capping.
	if pts[1].OverspendReduction >= pts[0].OverspendReduction {
		t.Errorf("capping did not weaken with privileged jobs: %.2f → %.2f",
			pts[0].OverspendReduction, pts[1].OverspendReduction)
	}
	// And performance must improve (privileged jobs never throttled).
	if pts[1].Performance < pts[0].Performance-0.002 {
		t.Errorf("perf fell with privileged jobs: %.4f → %.4f",
			pts[0].Performance, pts[1].Performance)
	}
	var buf bytes.Buffer
	if err := PrivilegedTable(pts).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E5") {
		t.Error("table rendering")
	}
}

func TestCabinetStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := CabinetStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[string]CabinetPoint{}
	for _, p := range pts {
		byKey[p.Placement+"/"+p.Policy] = p
	}
	// Spread placement with capping must carry the lowest breaker-trip
	// exposure of all setups.
	best := byKey["spread/mpc"].TripRisk
	for k, p := range byKey {
		if k != "spread/mpc" && p.TripRisk < best-1e-9 {
			t.Errorf("%s trip risk %.3f below spread/mpc %.3f", k, p.TripRisk, best)
		}
	}
	// Sanity on reported quantities.
	for k, p := range byKey {
		if p.PeakImbalance < 1 {
			t.Errorf("%s imbalance %.3f < 1", k, p.PeakImbalance)
		}
		if p.HottestPeak <= 0 {
			t.Errorf("%s hottest peak %v", k, p.HottestPeak)
		}
	}
	var buf bytes.Buffer
	if err := CabinetTable(pts).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E6") {
		t.Error("table rendering")
	}
}

func TestFairnessStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := FairnessStudy(Quick(), []string{"mpc", "hri"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	mpc, hri := pts[0], pts[1]
	// The paper's §IV claim: HRI spreads the pain more evenly than MPC.
	if hri.Jain <= mpc.Jain {
		t.Errorf("HRI Jain %.3f not above MPC %.3f — paper's fairness claim not reproduced",
			hri.Jain, mpc.Jain)
	}
	for _, p := range pts {
		if p.Jain <= 0 || p.Jain > 1 {
			t.Errorf("%s Jain %v out of range", p.Policy, p.Jain)
		}
		if len(p.PerBenchmark) == 0 {
			t.Errorf("%s missing per-benchmark breakdown", p.Policy)
		}
	}
	var buf bytes.Buffer
	if err := FairnessTable(pts).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := BenchmarkTable("mpc", mpc.PerBenchmark).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fairness study") {
		t.Error("table rendering")
	}
}

func TestHeteroStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	pts, err := HeteroStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// §III.B property 1: capping must work on the mixed fleet too —
	// comparable peak cut, substantial ΔP×T cut, acceptable performance,
	// and no red entries.
	for _, p := range pts {
		if p.PMaxReduction < 0.02 {
			t.Errorf("%s: peak cut %v", p.Fleet, p.PMaxReduction)
		}
		if p.OverspendReduction < 0.4 {
			t.Errorf("%s: ΔP×T cut %v", p.Fleet, p.OverspendReduction)
		}
		if p.Performance < 0.95 {
			t.Errorf("%s: perf %v", p.Fleet, p.Performance)
		}
		if p.RedEntries != 0 {
			t.Errorf("%s: red entered %d times", p.Fleet, p.RedEntries)
		}
	}
	var buf bytes.Buffer
	if err := HeteroTable(pts).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E8") {
		t.Error("table rendering")
	}
}
