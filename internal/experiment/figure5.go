package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/agentd"
	"repro/internal/managerd"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

// CostPoint is one Figure 5 measurement: the global manager's measured CPU
// utilisation (busy time over control time) when monitoring a candidate
// set of the given size.
type CostPoint struct {
	Agents     int
	Cycles     int
	BusyMicros int64
	CPUUtil    float64
}

// Figure5Config tunes the daemon-based management cost measurement.
type Figure5Config struct {
	// Sizes are the candidate set sizes to measure.
	Sizes []int
	// PerSize is the wall-clock measurement window per size.
	PerSize time.Duration
	// ControlEvery is the manager's control period; agents sample at the
	// same rate.
	ControlEvery time.Duration
}

// DefaultFigure5 returns the default measurement: the paper's candidate
// sizes at a 100 ms control period for 2 s each (the short period stands
// in for 1 s cycles so the measurement finishes quickly; utilisation is a
// ratio, so the curve's shape is preserved).
func DefaultFigure5() Figure5Config {
	return Figure5Config{
		Sizes:        []int{0, 16, 32, 48, 64, 96, 128},
		PerSize:      2 * time.Second,
		ControlEvery: 100 * time.Millisecond,
	}
}

// Figure5 reproduces the paper's Figure 5 by measurement, not modelling:
// it starts the real manager daemon and a fleet of real profiling agents
// on loopback TCP, lets the control loop run, and reads the manager's
// accounted busy time. Paper finding: the central manager's CPU
// utilisation rises non-linearly with the number of monitored nodes,
// which is why profiling only a subset A_candidate is necessary.
func Figure5(cfg Figure5Config) ([]CostPoint, error) {
	if len(cfg.Sizes) == 0 || cfg.PerSize <= 0 || cfg.ControlEvery <= 0 {
		return nil, fmt.Errorf("experiment: invalid figure 5 config")
	}
	var out []CostPoint
	for _, n := range cfg.Sizes {
		pt, err := measureManagerCost(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure5 n=%d: %w", n, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func measureManagerCost(n int, cfg Figure5Config) (CostPoint, error) {
	// Thresholds in the yellow band for a fleet of busy simulated nodes
	// (≈250 W each), so the policy selection path does real work every
	// cycle — the cost Figure 5 accounts.
	thr := power.Thresholds{
		PL: units.Watts(200 * float64(n)),
		PH: units.Watts(320 * float64(n)),
	}
	if n == 0 {
		thr = power.Thresholds{PL: 1, PH: 2}
	}
	srv, err := managerd.New(managerd.Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPCC{},
		Tg:           10,
		ControlEvery: cfg.ControlEvery,
		Thresholds:   thr,
	})
	if err != nil {
		return CostPoint{}, err
	}
	if err := srv.Start(); err != nil {
		return CostPoint{}, err
	}
	defer srv.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < n; i++ {
		a, err := agentd.New(agentd.Config{
			NodeID:      node.ID(i),
			ManagerAddr: srv.Addr(),
			SampleEvery: cfg.ControlEvery,
			TickEvery:   cfg.ControlEvery / 4,
			Model:       power.TianheNode(),
			Seed:        int64(i + 1),
		})
		if err != nil {
			return CostPoint{}, err
		}
		go func() { _ = a.Run(ctx) }()
	}

	time.Sleep(cfg.PerSize)
	st := srv.Status()
	return CostPoint{
		Agents:     n,
		Cycles:     st.Cycles,
		BusyMicros: st.BusyMicros,
		CPUUtil:    st.CPUUtilise,
	}, nil
}

// Figure5Table renders the measurement.
func Figure5Table(pts []CostPoint) *Table {
	t := &Table{
		Title:  "Figure 5: global manager CPU utilisation vs |A_candidate| (measured over TCP)",
		Header: []string{"|A_candidate|", "cycles", "busy (µs)", "CPU utilisation"},
		Notes: []string{
			"paper: cost rises non-linearly with monitored nodes; profiling a subset is necessary",
		},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.Agents), fmt.Sprintf("%d", p.Cycles),
			fmt.Sprintf("%d", p.BusyMicros), fmt.Sprintf("%.4f", p.CPUUtil))
	}
	return t
}
