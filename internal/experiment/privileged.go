package experiment

import (
	"fmt"

	"repro/internal/core"
)

// PrivilegedPoint is one cell of the dynamic-candidate-membership study.
type PrivilegedPoint struct {
	Fraction float64
	PolicyResult
}

// PrivilegedJobs sweeps the fraction of high-priority jobs (whose nodes
// are pinned out of A_candidate for their lifetime, §II.A) under MPC.
// As privileged work grows, the controllable power pool shrinks — the
// dynamic version of Figure 6's candidate-size effect — until the
// Controllability assumption fails and capping can no longer hold the
// system down.
func PrivilegedJobs(sc Scale, fracs []float64) ([]PrivilegedPoint, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.25, 0.5, 0.75}
	}
	baseline, err := runPolicy(sc, "none", nil)
	if err != nil {
		return nil, err
	}
	var out []PrivilegedPoint
	for _, f := range fracs {
		f := f
		r, err := runPolicy(sc, "mpc", func(cfg *core.Config) {
			cfg.PrivilegedJobFraction = f
		})
		if err != nil {
			return nil, err
		}
		rs := []PolicyResult{r}
		relativise(baseline, rs)
		out = append(out, PrivilegedPoint{Fraction: f, PolicyResult: rs[0]})
	}
	return out, nil
}

// PrivilegedTable renders the sweep.
func PrivilegedTable(pts []PrivilegedPoint) *Table {
	t := &Table{
		Title:  "Extension E5: dynamic candidate membership — high-priority job fraction (MPC)",
		Header: []string{"priv jobs", "Pmax", "ΔP×T cut", "perf", "CPLJ"},
		Notes: []string{
			"nodes of high-priority jobs are pinned out of A_candidate for the job's lifetime (§II.A)",
		},
	}
	for _, p := range pts {
		t.AddRow(pct(p.Fraction),
			fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.OverspendReduction), f4(p.Performance), f3(p.CPLJFrac))
	}
	return t
}
