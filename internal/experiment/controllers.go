package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/units"
)

// ControllerPoint is one control-law's outcome in the comparison study.
type ControllerPoint struct {
	Name string
	PolicyResult
	// Moves counts individual node actuations (throttle churn).
	Moves float64
	// SatLowCycles counts whole-fleet floor saturation (feedback only).
	SatLowCycles float64
}

// ControllerStudy compares the paper's Algorithm 1 (with MPC selection)
// against the related-work cluster-level feedback controller (Wang & Chen,
// §I.B) and the uncapped baseline on the same workload. The paper's
// architectural argument — selective throttling of a target subset beats
// indiscriminate coordinated control on performance at equal power safety
// — becomes measurable here.
func ControllerStudy(sc Scale) ([]ControllerPoint, error) {
	type setup struct {
		name   string
		mutate func(*core.Config)
	}
	setups := []setup{
		{"none", func(c *core.Config) { c.PolicyName = "none" }},
		{"algorithm1+mpc", func(c *core.Config) { c.PolicyName = "mpc" }},
		{"feedback-pi", func(c *core.Config) { c.Controller = "feedback" }},
		{"twolevel-uniform", func(c *core.Config) {
			c.Controller = "twolevel"
			c.TwoLevelDivision = "uniform"
		}},
		{"twolevel-prop", func(c *core.Config) {
			c.Controller = "twolevel"
			c.TwoLevelDivision = "proportional"
		}},
	}
	var out []ControllerPoint
	for _, st := range setups {
		pt := ControllerPoint{Name: st.name}
		var pmax, over, perf, cplj, moves, sat float64
		for _, seed := range sc.Seeds {
			cfg := sc.baseConfig(seed)
			st.mutate(&cfg)
			sys, err := core.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("controller %s: %w", st.name, err)
			}
			r, err := sys.Run(sc.Eval)
			if err != nil {
				return nil, err
			}
			pmax += float64(r.Summary.PMax)
			over += r.Summary.Overspend
			if !math.IsNaN(r.Summary.Performance) {
				perf += r.Summary.Performance
			}
			if !math.IsNaN(r.Summary.CPLJFrac) {
				cplj += r.Summary.CPLJFrac
			}
			switch {
			case r.FeedbackStats != nil:
				moves += float64(r.FeedbackStats.Moves)
				sat += float64(r.FeedbackStats.SatLow)
			case r.TwoLevelStats != nil:
				moves += float64(r.TwoLevelStats.Moves)
				sat += float64(r.TwoLevelStats.StarvedNodes)
			default:
				moves += float64(r.ManagerStats.DegradeOps + r.ManagerStats.RestoreOps)
			}
		}
		n := float64(len(sc.Seeds))
		pt.PMax = units.Watts(pmax / n)
		pt.Overspend = over / n
		pt.Performance = perf / n
		pt.CPLJFrac = cplj / n
		pt.Moves = moves / n
		pt.SatLowCycles = sat / n
		out = append(out, pt)
	}
	// Reductions against the uncapped run.
	base := out[0]
	for i := range out {
		if base.PMax > 0 {
			out[i].PMaxReduction = 1 - float64(out[i].PMax)/float64(base.PMax)
		}
		if base.Overspend > 0 {
			out[i].OverspendReduction = 1 - out[i].Overspend/base.Overspend
		}
	}
	return out, nil
}

// ControllerTable renders the study.
func ControllerTable(pts []ControllerPoint) *Table {
	t := &Table{
		Title:  "Controller comparison: Algorithm 1 (selective) vs feedback PI (coordinated)",
		Header: []string{"controller", "Pmax", "ΔP×T cut", "perf", "CPLJ", "moves"},
		Notes: []string{
			"both controllers regulate to the same learned P_L",
			"moves = individual node level actuations over the run",
		},
	}
	for _, p := range pts {
		t.AddRow(p.Name,
			fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.OverspendReduction),
			f4(p.Performance), f3(p.CPLJFrac),
			fmt.Sprintf("%.0f", p.Moves))
	}
	return t
}
