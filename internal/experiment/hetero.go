package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/power"
)

// OlderNode returns the profile model of a previous-generation node for
// heterogeneous studies: five DVFS levels, lower static and dynamic power.
// Heterogeneity here is in the power envelope, not speed — each node runs
// jobs at full rate at its own top level, which isolates the control
// question (can Algorithm 1 manage a mixed fleet?) from scheduling
// questions the paper does not treat.
func OlderNode() power.Model {
	m := power.TianheNode()
	m.CPU.Freqs = m.CPU.Freqs[:5]
	m.CPU.DynMaxPerSocket = 45
	m.Idle = device.IdleCurve{Min: 80, Max: 105}
	m.Mem.DynMax = 40
	m.NIC.DynMax = 15
	return m
}

// HeteroPoint is one fleet composition's outcome.
type HeteroPoint struct {
	Fleet string
	PolicyResult
}

// HeteroStudy runs MPC capping on a homogeneous Tianhe fleet and on a
// 50/50 mix of Tianhe and previous-generation nodes (§III.B property 1:
// the capping algorithm "is applicable to both heterogeneous and
// homogeneous systems ... as far as the power states of a node are
// discrete"). Each fleet is compared against its own uncapped baseline.
func HeteroStudy(sc Scale) ([]HeteroPoint, error) {
	old := OlderNode()
	fleets := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"homogeneous", func(*core.Config) {}},
		{"50/50 mixed", func(cfg *core.Config) {
			cfg.ModelFor = func(i int) power.Model {
				if i%2 == 1 {
					return old
				}
				return power.TianheNode()
			}
			// The mixed fleet peaks lower; scale the provision so the
			// capping question stays comparable.
			cfg.PMax = cfg.PMax * 85 / 100
		}},
	}
	var out []HeteroPoint
	for _, fl := range fleets {
		fl := fl
		baseline, err := runPolicy(sc, "none", fl.mutate)
		if err != nil {
			return nil, fmt.Errorf("hetero %s baseline: %w", fl.name, err)
		}
		capped, err := runPolicy(sc, "mpc", fl.mutate)
		if err != nil {
			return nil, fmt.Errorf("hetero %s: %w", fl.name, err)
		}
		rs := []PolicyResult{capped}
		relativise(baseline, rs)
		out = append(out, HeteroPoint{Fleet: fl.name, PolicyResult: rs[0]})
	}
	return out, nil
}

// HeteroTable renders the study.
func HeteroTable(pts []HeteroPoint) *Table {
	t := &Table{
		Title:  "Extension E8: heterogeneous fleet (§III.B property 1) under MPC",
		Header: []string{"fleet", "Pmax", "Pmax cut", "ΔP×T cut", "perf", "red"},
		Notes: []string{
			"mixed fleet: alternating Tianhe (10 levels) and previous-gen (5 levels) nodes",
			"cuts are against each fleet's own uncapped baseline",
		},
	}
	for _, p := range pts {
		t.AddRow(p.Fleet, fmt.Sprintf("%.2f kW", p.PMax.KW()),
			pct(p.PMaxReduction), pct(p.OverspendReduction),
			f4(p.Performance), fmt.Sprintf("%d", p.RedEntries))
	}
	return t
}
