package experiment

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// DefaultCandidateSizes are the |A_candidate| values swept in Figure 6.
var DefaultCandidateSizes = []int{0, 16, 32, 48, 64, 96, 128}

// SweepPoint is one (policy, candidate size) cell of Figure 6. Normalised
// values are against the size-0 run (no power management), as in the
// paper.
type SweepPoint struct {
	Policy string
	K      int // |A_candidate|
	PolicyResult
	PMaxNorm      float64 // PMax / PMax(K=0)
	OverspendNorm float64 // ΔP×T / ΔP×T(K=0)
}

// Figure6 reproduces the paper's Figure 6: the power capping effect (P_max
// and ΔP×T, normalised against no management) at increasing candidate set
// sizes, for the MPC and HRI policies. Paper findings: both metrics fall
// as |A_candidate| grows; the improvement diminishes beyond ≈48 nodes;
// MPC and HRI trend alike.
func Figure6(sc Scale, sizes []int, policies []string) ([]SweepPoint, error) {
	if len(sizes) == 0 {
		sizes = DefaultCandidateSizes
	}
	if len(policies) == 0 {
		policies = []string{"mpc", "hri"}
	}
	// The K=0 run is policy-independent (nothing to throttle); run it
	// once as the normalisation baseline.
	baseline, err := runPolicy(sc, "none", func(cfg *core.Config) {
		cfg.CandidateCount = 0
	})
	if err != nil {
		return nil, fmt.Errorf("figure6 baseline: %w", err)
	}
	out := make([]SweepPoint, len(policies)*len(sizes))
	errs := make([]error, len(out))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for pi, pol := range policies {
		for ki, k := range sizes {
			idx, pol, k := pi*len(sizes)+ki, pol, k
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				var pr PolicyResult
				if k == 0 {
					pr = baseline
					pr.Policy = pol
				} else {
					var err error
					pr, err = runPolicy(sc, pol, func(cfg *core.Config) {
						cfg.CandidateCount = k
					})
					if err != nil {
						errs[idx] = fmt.Errorf("figure6 %s k=%d: %w", pol, k, err)
						return
					}
				}
				pt := SweepPoint{Policy: pol, K: k, PolicyResult: pr}
				if baseline.PMax > 0 {
					pt.PMaxNorm = float64(pr.PMax) / float64(baseline.PMax)
				}
				if baseline.Overspend > 0 {
					pt.OverspendNorm = pr.Overspend / baseline.Overspend
				}
				out[idx] = pt
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Figure6Table renders the sweep in the paper's normalised form.
func Figure6Table(pts []SweepPoint) *Table {
	t := &Table{
		Title:  "Figure 6: power capping effect vs |A_candidate| (normalised to size 0)",
		Header: []string{"policy", "|A_candidate|", "Pmax/base", "ΔP×T/base", "perf"},
		Notes: []string{
			"paper: effect improves with candidate size, diminishing beyond ≈48 nodes",
		},
	}
	for _, p := range pts {
		t.AddRow(p.Policy, fmt.Sprintf("%d", p.K), f3(p.PMaxNorm), f3(p.OverspendNorm), f4(p.Performance))
	}
	return t
}
