// Package tier is the recursive seam of the capping federation: one
// reusable pair of halves from which any level of the paper's
// facility → row → cabinet → node hierarchy is assembled.
//
// A Governor is the child side. It dials its parent, subscribes with a
// cab_report frame, streams one aggregate report per period, and adopts
// each cab_budget grant as the {P_L, P_H} band its own control loop must
// enforce. Grants double as parent heartbeats: after Grace of silence
// the Governor floors itself to a failsafe band — the same dead-man
// posture as agentd's failsafe, replayed at every tier.
//
// A Grantor is the parent side. It owns child sessions, classifies them
// live or lost by pure report freshness, re-divides its current budget
// band across the live ones through internal/budget every cycle, and
// pushes one grant per child. Lost children reserve a floor share —
// their local failsafe still draws power — and per-child breaker caps
// bound any single grant.
//
// The two halves compose: a process that embeds both a Grantor (facing
// its children) and a Governor (facing its parent) is a mid-tier
// coordinator — internal/fedd in row mode — and the same cab_report/
// cab_budget frames run unchanged on every edge. A leaf managerd embeds
// only the Governor; the facility root embeds only the Grantor. Nothing
// in either half knows which level it runs at, which is what lets the
// topology grow a tier without growing the protocol.
package tier

// Snapshot is the child-side aggregate state a Governor folds into each
// upward report: the band currently being enforced (which may be a
// grant, the configured band, or the failsafe floor), fleet tallies and
// the leadership epoch. The Governor adds its own sensed power/demand
// (NoteSense) and newest grant sequence number.
type Snapshot struct {
	AppliedPLW float64 // lower threshold currently enforced, watts
	AppliedPHW float64 // upper threshold currently enforced, watts
	Agents     int
	Healthy    int
	Epoch      uint64
}

// b2f maps a bool onto the 0/1 gauge convention.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
