package tier

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/wire"
)

// GovernorConfig parametrises the child half of the seam.
type GovernorConfig struct {
	// Parent is the parent grantor's TCP address; ignored when Dial is
	// set.
	Parent string
	// Dial, when non-nil, opens the parent connection (tests hand a
	// fault-injecting in-memory dialer here).
	Dial func() (net.Conn, error)
	// Child is this governor's index under its parent — the Node field
	// of every upward cab_report.
	Child int
	// ReportEvery is the upward reporting period.
	ReportEvery time.Duration
	// Grace is the dead-man window: after this much silence from the
	// parent (no grant since the newest of Start and the last grant) the
	// governor floors itself to Failsafe.
	Grace time.Duration
	// Failsafe is the band enforced while floored.
	Failsafe power.Thresholds
	// Initial is the band enforced before the first grant of a young
	// connection (inside the grace window).
	Initial power.Thresholds
	// WireCodec mirrors managerd's: "binary" (and "") advertises the
	// binary codec on the subscribe frame; "json" pins JSON.
	WireCodec string
	// Snapshot supplies the aggregate state for each upward report; it
	// may have side effects (managerd refreshes its gauges here). Must be
	// non-nil.
	Snapshot func() Snapshot
	// OnGrant fires after each adopted grant (counter + gauge hooks).
	OnGrant func()
	// OnFloor fires once per floor transition, when the grace window
	// first expires.
	OnFloor func()
	// OnDecodeError fires per recoverable decode error on the parent
	// stream.
	OnDecodeError func()
}

// Governor is the child half: dial parent, report up, adopt grants,
// floor on silence. One Governor serves one parent edge; Run owns the
// session/redial loop and Thresholds answers the control loop's
// per-cycle question "which band do I enforce right now?".
type Governor struct {
	cfg GovernorConfig

	mu        sync.Mutex
	conn      *wire.Conn // current parent connection, nil between dials
	thr       power.Thresholds
	haveGrant bool
	grantSeq  uint64
	lastGrant time.Time
	floored   bool
	lastP     float64 // last cycle's sensed aggregate power
	lastD     float64 // last cycle's uncapped demand estimate
	started   time.Time
}

// NewGovernor builds an unstarted governor.
func NewGovernor(cfg GovernorConfig) *Governor { return &Governor{cfg: cfg} }

// Start stamps the beginning of the grace window, so a child that never
// reaches its parent still floors itself Grace in.
func (g *Governor) Start() {
	g.mu.Lock()
	g.started = time.Now()
	g.mu.Unlock()
}

// Thresholds returns the band the child's control cycle must enforce
// now: the freshest grant while the parent is alive, Failsafe once it
// has been silent past the grace window, and Initial before the first
// grant of a young connection.
func (g *Governor) Thresholds(now time.Time) power.Thresholds {
	g.mu.Lock()
	defer g.mu.Unlock()
	last := g.lastGrant
	if last.IsZero() {
		last = g.started
	}
	if now.Sub(last) > g.cfg.Grace {
		if !g.floored {
			g.floored = true
			if g.cfg.OnFloor != nil {
				g.cfg.OnFloor()
			}
		}
		return g.cfg.Failsafe
	}
	if g.haveGrant {
		return g.thr
	}
	return g.cfg.Initial
}

// Governed reports whether the newest grant is in force (true between
// the first grant and a floor transition).
func (g *Governor) Governed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.haveGrant && !g.floored
}

// NoteSense records the cycle's sensed power and demand for the next
// upward report.
func (g *Governor) NoteSense(p, demand float64) {
	g.mu.Lock()
	g.lastP, g.lastD = p, demand
	g.mu.Unlock()
}

// CloseConn drops the current parent connection (Stop, and the redial
// path after an error).
func (g *Governor) CloseConn() {
	g.mu.Lock()
	c := g.conn
	g.conn = nil
	g.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// dial opens one parent connection.
func (g *Governor) dial() (net.Conn, error) {
	if g.cfg.Dial != nil {
		return g.cfg.Dial()
	}
	return net.DialTimeout("tcp", g.cfg.Parent, 5*time.Second)
}

// Run is the federation loop: dial, subscribe, report until the
// connection dies, redial under capped backoff. Runs until stop closes.
func (g *Governor) Run(stop <-chan struct{}) {
	const (
		backoffMin = 10 * time.Millisecond
		backoffMax = 2 * time.Second
	)
	backoff := backoffMin
	for {
		select {
		case <-stop:
			return
		default:
		}
		raw, err := g.dial()
		if err == nil {
			conn := wire.NewConn(raw)
			g.mu.Lock()
			g.conn = conn
			g.mu.Unlock()
			err = g.session(conn, stop)
			g.CloseConn()
			if err == nil {
				backoff = backoffMin
			}
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// session runs one subscribed connection: send the subscribe report,
// spawn a reader for hellos and grants, and keep reporting every
// ReportEvery until either side fails. Returns nil if at least one grant
// arrived (a healthy session resets the redial backoff).
func (g *Governor) session(conn *wire.Conn, stop <-chan struct{}) error {
	sub := g.reportEnvelope()
	if g.cfg.WireCodec != wire.CodecJSON {
		sub.Codecs = []string{wire.CodecBinary, wire.CodecJSON}
	}
	if err := conn.Send(sub); err != nil {
		return err
	}

	sawGrant := false
	readerDone := make(chan error, 1)
	go func() {
		var env wire.Envelope
		for {
			if err := conn.RecvInto(&env); err != nil {
				var de *wire.DecodeError
				if errors.As(err, &de) && de.Recoverable() {
					if g.cfg.OnDecodeError != nil {
						g.cfg.OnDecodeError()
					}
					continue
				}
				readerDone <- err
				return
			}
			switch env.Type {
			case wire.KindHello:
				// The parent's subscribe reply; switching our writes to the
				// chosen codec mirrors agentd's negotiation.
				if env.Codec == wire.CodecBinary {
					conn.EnableBinary()
				}
			case wire.KindCabBudget:
				if g.applyGrant(&env) {
					sawGrant = true
				}
			}
		}
	}()

	tick := time.NewTicker(g.cfg.ReportEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return nil
		case err := <-readerDone:
			if sawGrant {
				return nil
			}
			return err
		case <-tick.C:
			if err := conn.Send(g.reportEnvelope()); err != nil {
				// The reader will fail too; drain it so the goroutine exits
				// before we redial.
				conn.Close()
				<-readerDone
				if sawGrant {
					return nil
				}
				return err
			}
		}
	}
}

// reportEnvelope snapshots the child's aggregate state into one
// cab_report frame: sensed power, uncapped demand, the band currently in
// force, fleet tallies, and the sequence number of the newest grant (so
// the parent sees which grant the child runs under).
func (g *Governor) reportEnvelope() wire.Envelope {
	snap := g.cfg.Snapshot()
	g.mu.Lock()
	seq := g.grantSeq
	p, d := g.lastP, g.lastD
	g.mu.Unlock()
	return wire.Envelope{
		Type: wire.KindCabReport, Node: g.cfg.Child, Seq: seq, Epoch: snap.Epoch,
		PowerW: p, DemandW: d,
		BudgetW: snap.AppliedPLW, PHW: snap.AppliedPHW,
		Agents:  snap.Agents,
		Healthy: snap.Healthy,
	}
}

// applyGrant installs a cab_budget band as the governed thresholds.
// Invalid bands (PL ≤ 0 or PH < PL — a parent bug or a torn frame) are
// ignored; the dead-man floor covers a parent that sends only garbage.
func (g *Governor) applyGrant(env *wire.Envelope) bool {
	thr := power.Thresholds{PL: units.Watts(env.BudgetW), PH: units.Watts(env.PHW)}
	if err := thr.Validate(); err != nil {
		return false
	}
	g.mu.Lock()
	g.thr = thr
	g.grantSeq = env.Seq
	g.lastGrant = time.Now()
	g.haveGrant = true
	g.floored = false
	g.mu.Unlock()
	if g.cfg.OnGrant != nil {
		g.cfg.OnGrant()
	}
	return true
}
