package tier

import (
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/wire"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGovernorThresholdBands pins the three-band contract of
// Thresholds: Initial before the first grant of a young connection,
// Failsafe once the parent has been silent past the grace window (with
// OnFloor firing exactly once per transition), and Governed dropping on
// the floor.
func TestGovernorThresholdBands(t *testing.T) {
	var floors int
	initial := power.Thresholds{PL: 50, PH: 60}
	failsafe := power.Thresholds{PL: 10, PH: 12}
	g := NewGovernor(GovernorConfig{
		Grace:    100 * time.Millisecond,
		Initial:  initial,
		Failsafe: failsafe,
		Snapshot: func() Snapshot { return Snapshot{} },
		OnFloor:  func() { floors++ },
	})
	g.Start()
	now := time.Now()

	if thr := g.Thresholds(now); thr != initial {
		t.Fatalf("young ungranted governor enforces %+v, want Initial %+v", thr, initial)
	}
	if g.Governed() {
		t.Fatal("governed before any grant")
	}

	late := now.Add(250 * time.Millisecond)
	if thr := g.Thresholds(late); thr != failsafe {
		t.Fatalf("past-grace governor enforces %+v, want Failsafe %+v", thr, failsafe)
	}
	if thr := g.Thresholds(late.Add(time.Millisecond)); thr != failsafe {
		t.Fatalf("floored governor enforces %+v, want Failsafe %+v", thr, failsafe)
	}
	if floors != 1 {
		t.Fatalf("OnFloor fired %d times across one transition, want 1", floors)
	}
	if g.Governed() {
		t.Fatal("governed while floored")
	}
}

// TestGovernorGrantorSession runs the full seam over in-memory pipes: a
// Governor dials, subscribes with a cab_report carrying its snapshot,
// negotiates the binary codec, and adopts the band the Grantor's next
// cycle divides for it — the exact edge managerd↔fedd and fedd↔fedd
// sessions are built from.
func TestGovernorGrantorSession(t *testing.T) {
	reg := obs.NewRegistry()
	band := power.Thresholds{PL: 100, PH: 110}
	grantor := NewGrantor(GrantorConfig{
		Division:   budget.Proportional,
		StaleAfter: time.Hour,
		Band:       func(time.Time) power.Thresholds { return band },
		Reg:        reg,
	})

	gov := NewGovernor(GovernorConfig{
		Dial: func() (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				conn := wire.NewConn(server)
				first, err := conn.Recv()
				if err != nil {
					conn.Close()
					return
				}
				grantor.Serve(conn, first)
			}()
			return client, nil
		},
		Child:       3,
		ReportEvery: 5 * time.Millisecond,
		Grace:       time.Hour,
		Initial:     power.Thresholds{PL: 50, PH: 60},
		Failsafe:    power.Thresholds{PL: 10, PH: 12},
		Snapshot: func() Snapshot {
			return Snapshot{AppliedPLW: 50, AppliedPHW: 60, Agents: 4, Healthy: 4, Epoch: 7}
		},
	})
	gov.Start()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		gov.Run(stop)
	}()
	defer func() {
		close(stop)
		gov.CloseConn()
		grantor.CloseAll()
		<-done
	}()

	gov.NoteSense(80, 120)
	waitFor(t, 5*time.Second, func() bool {
		states := grantor.States()
		return len(states) == 1 && states[0].DemandW == 120
	}, "grantor never saw the governor's demand report")

	grantor.Cycle()
	waitFor(t, 5*time.Second, func() bool {
		return gov.Governed()
	}, "governor never adopted the grant")
	// The sole child gets the whole band (P_H rebuilt from the headroom
	// ratio, hence the tolerance).
	thr := gov.Thresholds(time.Now())
	if math.Abs(float64(thr.PL-band.PL)) > 1e-9 || math.Abs(float64(thr.PH-band.PH)) > 1e-9 {
		t.Fatalf("governed thresholds %+v, want the full band %+v", thr, band)
	}

	st := grantor.States()[0]
	if st.Child != 3 || !st.Live || st.Codec != wire.CodecBinary {
		t.Errorf("child state %+v, want child 3 live on the binary codec", st)
	}
	if st.GrantW != 100 || st.Agents != 4 || st.Epoch != 7 {
		t.Errorf("child state %+v, want grant 100 W, 4 agents, epoch 7", st)
	}
	agg := grantor.Aggregate()
	if agg.Live != 1 || agg.Agents != 4 || agg.DemandW != 120 {
		t.Errorf("aggregate %+v, want 1 live, 4 agents, 120 W demand", agg)
	}
}

// subscribeChild opens a raw child session against the grantor: it
// subscribes with one cab_report and returns the connection, leaving the
// test to play the child.
func subscribeChild(t *testing.T, g *Grantor, node int, demandW float64) *wire.Conn {
	t.Helper()
	client, server := net.Pipe()
	sc := wire.NewConn(server)
	go func() {
		first, err := sc.Recv()
		if err != nil {
			sc.Close()
			return
		}
		g.Serve(sc, first)
	}()
	conn := wire.NewConn(client)
	if err := conn.Send(wire.Envelope{
		Type: wire.KindCabReport, Node: node, PowerW: demandW, DemandW: demandW,
	}); err != nil {
		t.Fatal(err)
	}
	hello, err := conn.Recv()
	if err != nil || hello.Type != wire.KindHello {
		t.Fatalf("subscribe reply = %+v, %v", hello, err)
	}
	// The hello reply is sent before Serve registers the child; wait for
	// the registration to land before the test cycles.
	waitFor(t, 5*time.Second, func() bool {
		for _, st := range g.States() {
			if st.Child == node && st.DemandW == demandW {
				return true
			}
		}
		return false
	}, "child never registered after subscribe")
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestGrantorLostChildReserveAndRedivide pins the dead-man arithmetic:
// a child that stops reporting past StaleAfter is classified lost, its
// share minus the reserved floor is re-divided to the survivor, and a
// fresh report brings it straight back.
func TestGrantorLostChildReserveAndRedivide(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGrantor(GrantorConfig{
		Division:   budget.Proportional,
		StaleAfter: 60 * time.Millisecond,
		Floor:      20,
		Band:       func(time.Time) power.Thresholds { return power.Thresholds{PL: 100, PH: 110} },
		Reg:        reg,
	})
	c0 := subscribeChild(t, g, 0, 200)
	c1 := subscribeChild(t, g, 1, 200)

	grants := make(chan wire.Envelope, 16)
	for _, c := range []*wire.Conn{c0, c1} {
		c := c
		go func() {
			var env wire.Envelope
			for c.RecvInto(&env) == nil {
				if env.Type == wire.KindCabBudget {
					grants <- env
				}
			}
		}()
	}

	g.Cycle()
	for i := 0; i < 2; i++ {
		select {
		case env := <-grants:
			if env.BudgetW != 50 {
				t.Errorf("equal-demand grant = %.0f W, want 50", env.BudgetW)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("first cycle never granted both children")
		}
	}

	// Child 1 goes silent past StaleAfter while child 0 stays fresh.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child 1 never classified lost")
		}
		if err := c0.Send(wire.Envelope{
			Type: wire.KindCabReport, Node: 0, PowerW: 200, DemandW: 200,
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		g.Cycle()
		states := g.States()
		if len(states) == 2 && states[0].Live && !states[1].Live {
			break
		}
	}

	// The survivor's next grant is the band minus the lost child's
	// reserved floor: 100 − 20 = 80.
	waitFor(t, 5*time.Second, func() bool {
		for {
			select {
			case env := <-grants:
				if env.Node == 0 && env.BudgetW == 80 {
					return true
				}
			default:
				return false
			}
		}
	}, "survivor never received the re-divided 80 W grant")

	// One fresh report restores the lost child on the next cycle.
	if err := c1.Send(wire.Envelope{
		Type: wire.KindCabReport, Node: 1, PowerW: 200, DemandW: 200,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		g.Cycle()
		states := g.States()
		return len(states) == 2 && states[0].Live && states[1].Live
	}, "silent child never came back live after a fresh report")
}

// TestGrantorSeedReservesShares pins promotion seeding: seeded children
// are live with no connection, keep their journalled grants visible, and
// a cycle neither sends them anything nor forgets their reservation; the
// grant sequence resumes past the largest seeded value.
func TestGrantorSeedReservesShares(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGrantor(GrantorConfig{
		Division:   budget.Proportional,
		StaleAfter: time.Hour,
		Band:       func(time.Time) power.Thresholds { return power.Thresholds{PL: 100, PH: 110} },
		Reg:        reg,
	})
	g.Seed([]SeedChild{
		{Child: 0, GrantW: 40, GrantPHW: 44, GrantSeq: 9},
		{Child: 1, GrantW: 60, GrantPHW: 66, GrantSeq: 11},
		{Child: -1, GrantW: 99}, // invalid index, dropped
	})

	states := g.States()
	if len(states) != 2 {
		t.Fatalf("seeded %d children, want 2: %+v", len(states), states)
	}
	for i, want := range []float64{40, 60} {
		if !states[i].Live || states[i].GrantW != want {
			t.Errorf("seeded child %d = %+v, want live with grant %.0f", i, states[i], want)
		}
	}

	// A cycle over seeded-but-unconnected children reserves their shares
	// without sending (no connection yet) and without marking them lost.
	g.Cycle()
	if v, _ := reg.Value("grants_sent"); v != 0 {
		t.Errorf("grants_sent = %v over connectionless children, want 0", v)
	}
	if v, _ := reg.Value("cabinets_live"); v != 2 {
		t.Errorf("cabinets_live = %v, want 2", v)
	}

	// The first real grant must fence past every journalled sequence.
	c0 := subscribeChild(t, g, 0, 100)
	go g.Cycle()
	var env wire.Envelope
	for {
		if err := c0.RecvInto(&env); err != nil {
			t.Fatalf("no grant after redial: %v", err)
		}
		if env.Type == wire.KindCabBudget {
			break
		}
	}
	if env.Seq <= 11 {
		t.Errorf("post-seed grant seq = %d, want > 11", env.Seq)
	}
}
