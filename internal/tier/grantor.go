package tier

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/wire"
)

// GrantorConfig parametrises the parent half of the seam.
type GrantorConfig struct {
	// Division selects the budget division strategy (internal/budget).
	Division budget.Division
	// StaleAfter marks a child lost when its newest report is older than
	// this. Liveness is pure report freshness — a child whose connection
	// drops but whose last report is still fresh keeps its budget share
	// through the window, so a warm-standby takeover that redials within
	// it is invisible at this tier.
	StaleAfter time.Duration
	// Breaker is the per-child circuit-breaker rating (pdist): a hard
	// cap on any single child's grant, whatever its demand. Zero means
	// unbounded.
	Breaker units.Watts
	// Floor is the per-child weighting floor handed to the division, and
	// the amount reserved from the budget for each lost child (covering
	// what it draws while floored on its local failsafe). Zero disables
	// both.
	Floor units.Watts
	// WireCodec mirrors managerd's: "binary" (and "") negotiates the
	// binary codec with children that advertise it; "json" pins JSON.
	WireCodec string
	// Band returns the budget band to divide this cycle. At the facility
	// root it is static configuration; at a mid-tier coordinator it is
	// the embedded Governor's Thresholds(now) — which is exactly how a
	// grant (or a dead-man floor) one tier up cascades down the tree.
	Band func(now time.Time) power.Thresholds
	// Reg receives the grantor's instruments (shared with the embedding
	// server's registry, so /metrics serves one namespace).
	Reg *obs.Registry
	// Trace, when non-nil, records staged cycle timelines.
	Trace *obs.CycleRecorder
	// OnGrant fires after each grant is sent — the HA journal hook.
	OnGrant func(child int, grantW, phW float64, seq uint64)
}

// childState is everything the grantor knows about one child. All
// fields are guarded by Grantor.mu. The connection is written only by
// the cycle goroutine once registered (the subscribe path sends its
// frames before registering), so grant writes never race.
type childState struct {
	conn     *wire.Conn
	lastSeen time.Time
	codec    string // negotiated wire codec for this child's session

	powerW, demandW  float64
	appliedW, phW    float64 // band the child says it is enforcing
	agents, healthy  int
	epoch            uint64 // child's leadership epoch (HA)
	appliedSeq       uint64 // grant seq echoed in the last report
	grantW, grantPHW float64
	grantSeq         uint64

	liveG, grantG, powerG, demandG *obs.Gauge
}

// ChildStatus is a point-in-time external view of one child, for tests
// and operator tooling.
type ChildStatus struct {
	Child      int
	Live       bool
	Codec      string
	PowerW     float64
	DemandW    float64
	AppliedW   float64
	GrantW     float64
	GrantPHW   float64
	GrantSeq   uint64
	AppliedSeq uint64
	Agents     int
	Healthy    int
	Epoch      uint64
}

// SeedChild pre-registers one child from recovered journal state, so a
// promoted coordinator starts its first cycle already knowing the fleet
// it inherited.
type SeedChild struct {
	Child    int
	GrantW   float64
	GrantPHW float64
	GrantSeq uint64
}

// Aggregate is the grantor's fleet roll-up — what a mid-tier
// coordinator reports upward as its own Snapshot.
type Aggregate struct {
	PowerW  float64
	DemandW float64
	Agents  int
	Healthy int
	Live    int
	Lost    int
}

// Grantor is the parent half: child sessions in, grants out. The
// embedding server owns the listener and frame routing; Serve is handed
// each already-identified child subscription, and Cycle is driven by
// the server's control loop.
type Grantor struct {
	cfg GrantorConfig

	mu       sync.Mutex
	children map[int]*childState

	seq atomic.Uint64

	reportsC    *obs.Counter
	grantsC     *obs.Counter
	decodeErrsC *obs.Counter
	cyclesC     *obs.Counter
	childrenG   *obs.Gauge
	liveG       *obs.Gauge
	lostG       *obs.Gauge
	fleetPowerG *obs.Gauge
	fleetDemG   *obs.Gauge
	fleetAgG    *obs.Gauge
	fleetHlG    *obs.Gauge
	budgetG     *obs.Gauge
	grantedG    *obs.Gauge
	cycleUsG    *obs.Gauge
}

// NewGrantor registers the grantor's instruments on cfg.Reg and returns
// an empty grantor. Child-facing gauges keep the established cab%d_*
// naming at every tier — "cabinet" is the protocol's word for "child",
// whether the child is a managerd or a whole row coordinator.
func NewGrantor(cfg GrantorConfig) *Grantor {
	reg := cfg.Reg
	return &Grantor{
		cfg:      cfg,
		children: make(map[int]*childState),

		reportsC:    reg.Counter("reports_received"),
		grantsC:     reg.Counter("grants_sent"),
		decodeErrsC: reg.Counter("decode_errors"),
		cyclesC:     reg.Counter("cycles"),
		childrenG:   reg.Gauge("cabinets"),
		liveG:       reg.Gauge("cabinets_live"),
		lostG:       reg.Gauge("cabinets_lost"),
		fleetPowerG: reg.Gauge("fleet_power_w"),
		fleetDemG:   reg.Gauge("fleet_demand_w"),
		fleetAgG:    reg.Gauge("fleet_agents"),
		fleetHlG:    reg.Gauge("fleet_healthy"),
		budgetG:     reg.Gauge("budget_w"),
		grantedG:    reg.Gauge("granted_w"),
		cycleUsG:    reg.Gauge("last_cycle_micros"),
	}
}

// Serve owns one child subscription: first is the already-received
// subscribe cab_report (which doubles as the hello, with the codec
// advertisement); the reply names the chosen codec, after which the
// connection is registered and the cycle loop owns its write side. The
// rest of the stream is reports. Blocks until the connection dies.
func (g *Grantor) Serve(conn *wire.Conn, first wire.Envelope) {
	if first.Type != wire.KindCabReport || first.Node < 0 {
		conn.Close()
		return
	}
	wantBin := g.cfg.WireCodec != wire.CodecJSON && first.Advertises(wire.CodecBinary)
	reply := wire.Envelope{Type: wire.KindHello}
	codec := wire.CodecJSON
	if wantBin {
		reply.Codec = wire.CodecBinary
		codec = wire.CodecBinary
	}
	if err := conn.Send(reply); err != nil {
		conn.Close()
		return
	}
	if wantBin {
		conn.EnableBinary()
	}

	child := first.Node
	g.mu.Lock()
	cs := g.childLocked(child)
	old := cs.conn
	cs.conn = conn
	cs.codec = codec
	g.noteReport(cs, &first)
	g.mu.Unlock()
	if old != nil {
		// A redial (or a promoted warm standby taking the child over)
		// replaced the connection; the old one is retired silently and
		// the child never counts as lost.
		old.Close()
	}

	var env wire.Envelope
	for {
		if err := conn.RecvInto(&env); err != nil {
			var de *wire.DecodeError
			if errors.As(err, &de) && de.Recoverable() {
				g.decodeErrsC.Inc()
				continue
			}
			break
		}
		if env.Type != wire.KindCabReport {
			continue
		}
		g.mu.Lock()
		if cs.conn == conn {
			g.noteReport(cs, &env)
		}
		g.mu.Unlock()
	}
	g.mu.Lock()
	if cs.conn == conn {
		cs.conn = nil
	}
	g.mu.Unlock()
	conn.Close()
}

// childLocked finds or creates the state (and per-child gauges) for one
// child index. Caller holds g.mu.
func (g *Grantor) childLocked(child int) *childState {
	cs := g.children[child]
	if cs == nil {
		cs = &childState{
			liveG:   g.cfg.Reg.Gauge(fmt.Sprintf("cab%d_live", child)),
			grantG:  g.cfg.Reg.Gauge(fmt.Sprintf("cab%d_grant_w", child)),
			powerG:  g.cfg.Reg.Gauge(fmt.Sprintf("cab%d_power_w", child)),
			demandG: g.cfg.Reg.Gauge(fmt.Sprintf("cab%d_demand_w", child)),
		}
		g.children[child] = cs
	}
	return cs
}

// noteReport folds one cab_report into the child state. Caller holds
// g.mu.
func (g *Grantor) noteReport(cs *childState, env *wire.Envelope) {
	cs.lastSeen = time.Now()
	cs.powerW, cs.demandW = env.PowerW, env.DemandW
	cs.appliedW, cs.phW = env.BudgetW, env.PHW
	cs.agents, cs.healthy = env.Agents, env.Healthy
	cs.epoch = env.Epoch
	cs.appliedSeq = env.Seq
	g.reportsC.Inc()
}

// Seed restores children recovered from a journal: each is registered
// with its last granted band and stamped fresh, so its share stays
// reserved (live with a nil connection) until it redials the promoted
// coordinator — takeover never starves a child that was healthy when
// the old leader died. The grant sequence resumes past the largest
// seeded value.
func (g *Grantor) Seed(children []SeedChild) {
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, sc := range children {
		if sc.Child < 0 {
			continue
		}
		cs := g.childLocked(sc.Child)
		cs.lastSeen = now
		cs.grantW, cs.grantPHW, cs.grantSeq = sc.GrantW, sc.GrantPHW, sc.GrantSeq
		cs.grantG.Set(sc.GrantW)
		for {
			cur := g.seq.Load()
			if sc.GrantSeq <= cur || g.seq.CompareAndSwap(cur, sc.GrantSeq) {
				break
			}
		}
	}
}

// Cycle is one coordination round: classify children live/lost by
// report freshness, divide the current band across the live ones, and
// send each its grant. The division reserves Floor for every lost child
// (its local failsafe still draws power) and caps every share at the
// breaker rating. P_H scales from P_L by the band's headroom ratio, so
// each child's yellow band is proportionally as wide as its parent's.
func (g *Grantor) Cycle() {
	t0 := time.Now()
	g.cyclesC.Inc()
	span := g.cfg.Trace.Begin()

	band := g.cfg.Band(t0)
	g.budgetG.Set(float64(band.PL))

	type target struct {
		child int
		cs    *childState
		conn  *wire.Conn
	}
	var (
		targets         []target
		demands         []budget.Demand
		lost            int
		fleetP, fleetD  float64
		agents, healthy int
	)
	g.mu.Lock()
	for child, cs := range g.children {
		// Liveness is report freshness alone: a child mid-takeover
		// (connection briefly down, reports still fresh) keeps its share
		// reserved rather than thrashing the survivors' grants.
		live := t0.Sub(cs.lastSeen) <= g.cfg.StaleAfter
		cs.liveG.Set(b2f(live))
		cs.powerG.Set(cs.powerW)
		cs.demandG.Set(cs.demandW)
		fleetP += cs.powerW
		agents += cs.agents
		healthy += cs.healthy
		if !live {
			lost++
			cs.grantG.Set(0)
			continue
		}
		fleetD += cs.demandW
		want := cs.demandW
		if want <= 0 {
			// A child that has not sensed yet weighs in at its current
			// draw, so a fresh subscriber is not starved before its first
			// full cycle.
			want = cs.powerW
		}
		targets = append(targets, target{child: child, cs: cs, conn: cs.conn})
		demands = append(demands, budget.Demand{
			ID:    child,
			Want:  want,
			Floor: float64(g.cfg.Floor),
			Cap:   float64(g.cfg.Breaker),
		})
	}
	g.mu.Unlock()
	span.Stage(obs.StageSense, time.Since(t0),
		fmt.Sprintf("cabinets=%d lost=%d", len(targets), lost))

	// Divide what is left after reserving a floor for each lost child.
	tDiv := time.Now()
	total := float64(band.PL) - float64(lost)*float64(g.cfg.Floor)
	shares := budget.Divide(total, g.cfg.Division, demands)
	span.Stage(obs.StageSelect, time.Since(tDiv), g.cfg.Division.String())

	tAct := time.Now()
	phRatio := float64(band.PH) / float64(band.PL)
	granted := 0.0
	sent := 0
	for i, tg := range targets {
		grant := shares[i]
		if grant <= 0 || tg.conn == nil {
			// A nil conn is a live child between connections (takeover in
			// flight): its share stays reserved, the grant frame waits for
			// the redial.
			continue
		}
		seq := g.seq.Add(1)
		env := wire.Envelope{
			Type: wire.KindCabBudget, Node: tg.child, Seq: seq,
			BudgetW: grant, PHW: grant * phRatio,
		}
		if err := tg.conn.Send(env); err != nil {
			// The reader side will notice and deregister; next cycle
			// treats the child as lost unless it redials first.
			continue
		}
		granted += grant
		sent++
		g.mu.Lock()
		tg.cs.grantW, tg.cs.grantPHW, tg.cs.grantSeq = grant, grant*phRatio, seq
		tg.cs.grantG.Set(grant)
		g.mu.Unlock()
		if g.cfg.OnGrant != nil {
			g.cfg.OnGrant(tg.child, grant, grant*phRatio, seq)
		}
	}
	g.grantsC.Add(int64(sent))
	span.Stage(obs.StageActuate, time.Since(tAct), fmt.Sprintf("grants=%d", sent))
	span.End()

	g.childrenG.SetInt(int64(lost + len(targets)))
	g.liveG.SetInt(int64(len(targets)))
	g.lostG.SetInt(int64(lost))
	g.fleetPowerG.Set(fleetP)
	g.fleetDemG.Set(fleetD)
	g.fleetAgG.SetInt(int64(agents))
	g.fleetHlG.SetInt(int64(healthy))
	g.grantedG.Set(granted)
	g.cycleUsG.SetInt(time.Since(t0).Microseconds())
}

// States returns a point-in-time view of every known child, sorted by
// child index.
func (g *Grantor) States() []ChildStatus {
	now := time.Now()
	g.mu.Lock()
	out := make([]ChildStatus, 0, len(g.children))
	for child, cs := range g.children {
		out = append(out, ChildStatus{
			Child:      child,
			Live:       now.Sub(cs.lastSeen) <= g.cfg.StaleAfter,
			Codec:      cs.codec,
			PowerW:     cs.powerW,
			DemandW:    cs.demandW,
			AppliedW:   cs.appliedW,
			GrantW:     cs.grantW,
			GrantPHW:   cs.grantPHW,
			GrantSeq:   cs.grantSeq,
			AppliedSeq: cs.appliedSeq,
			Agents:     cs.agents,
			Healthy:    cs.healthy,
			Epoch:      cs.epoch,
		})
	}
	g.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Child < out[j-1].Child; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Aggregate rolls the fleet up for an upward report: total sensed power
// across all children (a lost child still draws), live demand plus a
// floor reservation per lost child, and fleet tallies.
func (g *Grantor) Aggregate() Aggregate {
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	var a Aggregate
	for _, cs := range g.children {
		a.PowerW += cs.powerW
		a.Agents += cs.agents
		a.Healthy += cs.healthy
		if now.Sub(cs.lastSeen) <= g.cfg.StaleAfter {
			a.Live++
			d := cs.demandW
			if d <= 0 {
				d = cs.powerW
			}
			a.DemandW += d
		} else {
			a.Lost++
			a.DemandW += float64(g.cfg.Floor)
		}
	}
	return a
}

// CloseAll closes every child connection (the embedding server's Stop
// path); Serve loops notice and deregister.
func (g *Grantor) CloseAll() {
	g.mu.Lock()
	conns := make([]*wire.Conn, 0, len(g.children))
	for _, cs := range g.children {
		if cs.conn != nil {
			conns = append(conns, cs.conn)
		}
	}
	g.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
