// Package agentd implements the per-node profiling agent daemon of the
// architecture (Figure 1): it samples the node's kernel counters every
// sampling interval, pushes the raw interval readings to the global power
// manager over TCP, and applies the power level commands the manager sends
// back.
//
// In this repository the "node" behind the agent is the simulated Tianhe
// node driven by a synthetic load pattern in real time — the agent code
// itself (sampling, deltas, wire protocol, command handling) is exactly
// what would run against a real /proc.
package agentd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Config parametrises an agent.
type Config struct {
	// NodeID is this node's identity within the cluster.
	NodeID node.ID
	// ManagerAddr is the TCP address of the global manager daemon.
	ManagerAddr string
	// ManagerAddrs, when non-empty, takes precedence over ManagerAddr:
	// an ordered list of manager endpoints (primary first, then warm
	// standbys). Each failed session advances to the next address, so an
	// agent orphaned by a dead primary finds the promoted standby within
	// one redial sweep instead of hammering the dead address forever.
	ManagerAddrs []string
	// Dial, when non-nil, replaces the TCP dial of ManagerAddr — the
	// in-process harness routes agents through fault-injecting pipes
	// this way. Each Run invocation calls it once.
	Dial func(ctx context.Context) (net.Conn, error)
	// SampleEvery is the sampling/push interval τ.
	SampleEvery time.Duration
	// TickEvery is the granularity at which the simulated node's load
	// pattern advances.
	TickEvery time.Duration
	// Model is the node's device model.
	Model power.Model
	// Seed drives the synthetic load pattern.
	Seed int64

	// FailsafeAfter arms the dead-man switch: after this many sample
	// periods without any manager traffic (disconnected, partitioned, or
	// a silent manager), the agent self-degrades to FailsafeLevel so the
	// cluster cap holds with zero managers alive. Zero disables the
	// switch. The watchdog runs under RunWithReconnect and inside Run's
	// tick loop, so a connected-but-silent manager trips it too.
	FailsafeAfter int
	// FailsafeLevel is the floor level the dead-man switch degrades to
	// (default 0, the lowest power state). The switch only ever lowers
	// the level — a node already below the floor stays where it is.
	FailsafeLevel int

	// Passive turns the agent into a stateless relay for an externally
	// owned node: no simulated node, no tick loop, no self-sampling.
	// The external driver pushes samples through PushReading on its own
	// clock, and commands are applied through the Apply callback. The
	// wire behaviour (hello, acks, batch unwrapping, dead-man switch) is
	// identical to an active agent — the manager cannot tell them apart.
	Passive bool
	// MaxLevel is the passive node's top power level (levels-1),
	// reported in the hello. Passive mode only.
	MaxLevel int
	// InitialLevel is the passive node's level when the agent starts.
	// Passive mode only.
	InitialLevel int
	// Apply executes a level command against the external node and
	// returns the level actually in force afterwards (valid even when
	// err is non-nil, so acks report the real level on a rejected
	// command). Required in passive mode.
	Apply func(level int) (applied int, err error)

	// Obs is the instrument registry the agent publishes its counters
	// into (samples pushed, commands applied, acks sent, failsafe trips,
	// reconnects). Nil gets a private registry; the powagentd command
	// passes one shared with its -metrics-addr endpoint.
	Obs *obs.Registry

	// Codec selects the wire codecs advertised in the hello: "binary"
	// (also the "" default) offers the length-prefixed checksummed codec
	// and switches onto it when the manager confirms; "json" advertises
	// nothing and keeps the newline-JSON reference codec. The read side
	// always accepts both regardless.
	Codec string
}

// Agent is a running profiling agent.
type Agent struct {
	cfg  Config
	node *node.Node
	rng  *rand.Rand

	mu       sync.Mutex
	prevSnap procfs.Snapshot
	havePrev bool
	job      workload.JobID

	// dead-man switch state
	lastContact time.Time // last traffic received from a manager
	tripped     bool      // currently at the failsafe floor by our own hand

	// Leadership fencing state (guarded by mu): the highest manager epoch
	// ever seen in a welcome hello, and the rotation cursor over
	// ManagerAddrs. An epoch of zero means no HA-enabled manager has been
	// met and fencing is off.
	maxEpoch uint64
	addrIdx  int

	// Instruments (same names the /metrics endpoint exposes).
	reg           *obs.Registry
	samplesPushed *obs.Counter // samples sent to the manager
	cmdsApplied   *obs.Counter // level commands applied
	applyErrs     *obs.Counter // commands rejected by the node
	acksSent      *obs.Counter // acks written back
	failsafeTrips *obs.Counter // dead-man switch firings
	reconnects    *obs.Counter // redials after a dropped connection
	staleRejects  *obs.Counter // sessions refused for carrying an old epoch
	decodeErrs    *obs.Counter // corrupt inbound frames tolerated and skipped

	// synthetic load state
	loadUntil time.Duration
	load      node.Load
	clock     time.Duration

	// passive-mode state: the cached level of the external node (kept in
	// sync by Apply returns and pushed readings) and the live connection's
	// serialised send function for PushReading (nil when disconnected).
	curLevel int
	send     func(wire.Envelope) error
}

// New constructs an agent: with a freshly simulated node at full power,
// or (Passive) as a relay for an externally owned node.
func New(cfg Config) (*Agent, error) {
	if cfg.SampleEvery <= 0 || cfg.TickEvery <= 0 {
		return nil, fmt.Errorf("agentd: need positive intervals")
	}
	a := &Agent{cfg: cfg, lastContact: time.Now()}
	switch cfg.Codec {
	case "", wire.CodecBinary, wire.CodecJSON:
	default:
		return nil, fmt.Errorf("agentd: unknown wire codec %q", cfg.Codec)
	}
	if cfg.Passive {
		if cfg.Apply == nil {
			return nil, fmt.Errorf("agentd: passive mode needs an Apply callback")
		}
		if cfg.MaxLevel < 0 || cfg.InitialLevel < 0 || cfg.InitialLevel > cfg.MaxLevel {
			return nil, fmt.Errorf("agentd: passive levels invalid: initial %d, max %d", cfg.InitialLevel, cfg.MaxLevel)
		}
		if cfg.FailsafeAfter > 0 && (cfg.FailsafeLevel < 0 || cfg.FailsafeLevel > cfg.MaxLevel) {
			return nil, fmt.Errorf("agentd: failsafe level %d outside [0,%d]", cfg.FailsafeLevel, cfg.MaxLevel)
		}
		a.curLevel = cfg.InitialLevel
	} else {
		n, err := node.New(cfg.NodeID, node.Config{Model: cfg.Model, Controllable: true})
		if err != nil {
			return nil, err
		}
		if cfg.FailsafeAfter > 0 && (cfg.FailsafeLevel < 0 || cfg.FailsafeLevel >= n.Levels()) {
			return nil, fmt.Errorf("agentd: failsafe level %d outside [0,%d)", cfg.FailsafeLevel, n.Levels())
		}
		a.node = n
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	a.reg = cfg.Obs
	if a.reg == nil {
		a.reg = obs.NewRegistry()
	}
	a.samplesPushed = a.reg.Counter("samples_pushed")
	a.cmdsApplied = a.reg.Counter("commands_applied")
	a.applyErrs = a.reg.Counter("apply_errors")
	a.acksSent = a.reg.Counter("acks_sent")
	a.failsafeTrips = a.reg.Counter("failsafe_trips")
	a.reconnects = a.reg.Counter("reconnects")
	a.staleRejects = a.reg.Counter("stale_epoch_rejects")
	a.decodeErrs = a.reg.Counter("decode_errors")
	return a, nil
}

// Registry exposes the agent's instruments; powagentd serves them on its
// -metrics-addr endpoint.
func (a *Agent) Registry() *obs.Registry { return a.reg }

// CommandsApplied reports how many level commands the agent has applied.
func (a *Agent) CommandsApplied() int { return int(a.cmdsApplied.Value()) }

// Level reports the node's current power level.
func (a *Agent) Level() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.Passive {
		return a.curLevel
	}
	return a.node.Level()
}

// FailsafeTrips reports how many times the dead-man switch has fired.
func (a *Agent) FailsafeTrips() int { return int(a.failsafeTrips.Value()) }

// MaxEpoch reports the highest leadership epoch any manager has announced
// to this agent (zero when fencing has never been engaged).
func (a *Agent) MaxEpoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxEpoch
}

// StaleEpochRejects reports how many manager sessions the agent refused
// because they announced an epoch older than one it had already seen.
func (a *Agent) StaleEpochRejects() int { return int(a.staleRejects.Value()) }

// dialAddr picks the current endpoint from the rotation list (or the
// single ManagerAddr when no list is configured).
func (a *Agent) dialAddr() string {
	if len(a.cfg.ManagerAddrs) == 0 {
		return a.cfg.ManagerAddr
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.ManagerAddrs[a.addrIdx%len(a.cfg.ManagerAddrs)]
}

// advanceAddr moves the rotation cursor after a failed session, so the
// next Run tries the following manager endpoint.
func (a *Agent) advanceAddr() {
	if len(a.cfg.ManagerAddrs) < 2 {
		return
	}
	a.mu.Lock()
	a.addrIdx++
	a.mu.Unlock()
}

// Tripped reports whether the agent currently sits at the failsafe floor
// by its own decision (no manager contact). It clears on the next manager
// traffic; the level itself stays until the manager reconciles it.
func (a *Agent) Tripped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tripped
}

// touchContact records manager traffic: it re-arms the dead-man switch
// and clears the tripped flag. The node's level is left alone — a
// returning manager sees the floor level in the agent's samples and
// reconciles by explicit command rather than the agent guessing.
func (a *Agent) touchContact() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastContact = time.Now()
	a.tripped = false
}

// failsafeCheck trips the dead-man switch when the silence grace
// (FailsafeAfter sample periods) has elapsed: the node self-degrades to
// the failsafe floor so the facility cap holds with no manager alive.
func (a *Agent) failsafeCheck() {
	if a.cfg.FailsafeAfter <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tripped {
		return
	}
	grace := time.Duration(a.cfg.FailsafeAfter) * a.cfg.SampleEvery
	if time.Since(a.lastContact) < grace {
		return
	}
	a.tripped = true
	a.failsafeTrips.Inc()
	if a.cfg.Passive {
		if a.curLevel > a.cfg.FailsafeLevel {
			if lvl, err := a.cfg.Apply(a.cfg.FailsafeLevel); err == nil {
				a.curLevel = lvl
			}
		}
		return
	}
	if a.node.Level() > a.cfg.FailsafeLevel {
		_ = a.node.SetLevel(a.cfg.FailsafeLevel)
	}
}

// step advances the synthetic workload pattern by one tick: the node
// alternates between job episodes (random benchmark-like loads attributed
// to a synthetic job ID) and short idle gaps.
func (a *Agent) step() {
	a.clock += a.cfg.TickEvery
	if a.clock >= a.loadUntil {
		if a.rng.Float64() < 0.15 {
			// Idle gap.
			a.load = node.Load{CPUUtil: 0.02}
			a.job = 0
			a.loadUntil = a.clock + time.Duration(1+a.rng.Intn(5))*a.cfg.SampleEvery
		} else {
			a.load = node.Load{
				CPUUtil: 0.5 + a.rng.Float64()*0.5,
				MemFrac: 0.2 + a.rng.Float64()*0.5,
				NICFrac: a.rng.Float64() * 0.5,
			}
			a.job = workload.JobID(1 + a.rng.Intn(16))
			a.loadUntil = a.clock + time.Duration(5+a.rng.Intn(30))*a.cfg.SampleEvery
		}
	}
	a.node.SetLoad(a.load)
	a.node.Tick(a.cfg.TickEvery)
}

// sample produces the current interval reading.
func (a *Agent) sample() manager.AgentReading {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.node.Snapshot(a.clock)
	r := manager.AgentReading{
		ID:       a.node.ID(),
		Level:    a.node.Level(),
		MaxLevel: a.node.Levels() - 1,
		Job:      a.job,
	}
	if a.havePrev {
		if d, err := procfs.Diff(a.prevSnap, cur); err == nil {
			r.Delta = d
		}
	}
	a.prevSnap, a.havePrev = cur, true
	return r
}

// apply executes a level command.
func (a *Agent) apply(level int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.Passive {
		lvl, err := a.cfg.Apply(level)
		a.curLevel = lvl
		if err != nil {
			a.applyErrs.Inc()
			return err
		}
		a.cmdsApplied.Inc()
		return nil
	}
	if err := a.node.SetLevel(level); err != nil {
		a.applyErrs.Inc()
		return err
	}
	a.cmdsApplied.Inc()
	return nil
}

// PushReading sends one externally supplied sample to the manager over
// the live connection. Passive mode only — the external driver owns the
// sampling clock. The reading's level refreshes the cached level so
// hello-after-reconnect and ack replies stay truthful.
func (a *Agent) PushReading(r manager.AgentReading) error {
	a.mu.Lock()
	send := a.send
	if send != nil {
		a.curLevel = r.Level
	}
	a.mu.Unlock()
	if send == nil {
		return fmt.Errorf("agentd: node %d not connected", a.cfg.NodeID)
	}
	if err := send(wire.SampleEnvelope(r)); err != nil {
		return err
	}
	a.samplesPushed.Inc()
	return nil
}

// RunWithReconnect runs the agent, redialling the manager with capped
// exponential backoff whenever the connection drops. It returns only when
// ctx is cancelled. The node keeps its power level across reconnects —
// an agent restart must not silently undo a manager's throttle command.
func (a *Agent) RunWithReconnect(ctx context.Context, initialBackoff, maxBackoff time.Duration) {
	if initialBackoff <= 0 {
		initialBackoff = 100 * time.Millisecond
	}
	if maxBackoff < initialBackoff {
		maxBackoff = 10 * initialBackoff
	}
	// Dead-man watchdog: ticks once per sample period for the whole
	// reconnect loop, so the switch fires even while the agent sits in
	// dial backoff with no connection (and therefore no tick loop).
	if a.cfg.FailsafeAfter > 0 {
		a.touchContact() // grace counts from run start, not agent creation
		wdone := make(chan struct{})
		defer close(wdone)
		go func() {
			t := time.NewTicker(a.cfg.SampleEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-wdone:
					return
				case <-t.C:
					a.failsafeCheck()
				}
			}
		}()
	}
	backoff := initialBackoff
	first := true
	for ctx.Err() == nil {
		if !first {
			a.reconnects.Inc()
		}
		first = false
		err := a.Run(ctx)
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			backoff = initialBackoff
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Run connects to the manager and serves until ctx is cancelled or the
// connection drops. It returns the first terminal error (nil on clean
// shutdown via ctx). On return the connection is closed and the reader
// goroutine has exited — reconnect churn never accumulates goroutines.
func (a *Agent) Run(ctx context.Context) (err error) {
	// A failed session advances the endpoint rotation: dial refused,
	// connection dropped, or a fenced (stale-epoch) manager all mean the
	// next attempt should try the following address in the list.
	defer func() {
		if err != nil {
			a.advanceAddr()
		}
	}()
	var raw net.Conn
	if a.cfg.Dial != nil {
		raw, err = a.cfg.Dial(ctx)
	} else {
		var d net.Dialer
		raw, err = d.DialContext(ctx, "tcp", a.dialAddr())
	}
	if err != nil {
		return fmt.Errorf("agentd: dial manager: %w", err)
	}
	conn := wire.NewConn(raw)

	// Watcher: a cancelled ctx must unblock a send parked on a dead pipe
	// (e.g. a dial accepted into a crashed manager's queue, or a stalled
	// manager reader) — closing the conn is the only lever that works
	// mid-write.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	// Sends come from two goroutines (samples below, acks in the reader),
	// and wire.Conn requires external write serialisation.
	var sendMu sync.Mutex
	send := func(e wire.Envelope) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return conn.Send(e)
	}

	// Reader: apply commands as they arrive. Closing the conn is what
	// unblocks a reader parked in Recv, so the join below must close
	// first, then wait.
	readErr := make(chan error, 1)
	readDone := make(chan struct{})
	defer func() {
		conn.Close()
		<-readDone
	}()

	// Hello carries the node's current level: a reconnecting throttled
	// agent must not look full-power to the manager until its first
	// sample arrives. It also reports the highest leadership epoch this
	// agent has seen, so a deposed leader we reconnect to learns about
	// its successor and fences itself.
	maxLevel := a.cfg.MaxLevel
	if !a.cfg.Passive {
		maxLevel = a.node.Levels() - 1
	}
	hello := wire.Envelope{
		Type: wire.KindHello, Node: int(a.cfg.NodeID),
		MaxLevel: maxLevel,
		Level:    a.Level(),
		Epoch:    a.MaxEpoch(),
	}
	if a.cfg.Codec != wire.CodecJSON {
		// Advertise binary support; the manager's hello reply names the
		// chosen codec. Until (and unless) that confirmation arrives,
		// every frame we send stays JSON — old managers simply never
		// confirm, and nothing changes.
		hello.Codecs = []string{wire.CodecBinary}
	}
	if err := send(hello); err != nil {
		close(readDone)
		return err
	}

	// handle processes one manager message; batch frames (the manager's
	// coalesced command+heartbeat writes) unwrap one level deep — batches
	// do not nest, so a Batch inside a Batch is dropped. fenced is owned
	// by the reader goroutine: once the session's manager proves stale,
	// every further frame on it is ignored and the connection torn down.
	fenced := false
	var handle func(env wire.Envelope, depth int)
	handle = func(env wire.Envelope, depth int) {
		if fenced {
			return
		}
		switch env.Type {
		case wire.KindHello:
			// Codec confirmation rides the manager's first reply frame:
			// from here on our writes use the negotiated codec. This must
			// happen before the epoch check — a non-HA manager replies
			// with epoch zero when it only wants to pick a codec.
			if env.Codec == wire.CodecBinary && a.cfg.Codec != wire.CodecJSON {
				conn.EnableBinary()
			}
			// The manager's epoch announcement (HA mode only). An epoch
			// below one we have already seen is a deposed leader still
			// talking: refuse the session so its commands can never undo
			// the live leader's.
			if env.Epoch == 0 {
				return
			}
			a.mu.Lock()
			if env.Epoch < a.maxEpoch {
				a.mu.Unlock()
				fenced = true
				a.staleRejects.Inc()
				conn.Close()
				return
			}
			a.maxEpoch = env.Epoch
			a.mu.Unlock()
		case wire.KindBatch:
			if depth > 0 {
				return
			}
			for _, inner := range env.Batch {
				handle(inner, depth+1)
			}
		case wire.KindCommand:
			_ = a.apply(env.Level)
			// Ack with the level actually in force: on an invalid
			// command the manager learns the real level instead of
			// assuming the command took.
			if send(wire.Envelope{
				Type: wire.KindAck, Node: int(a.cfg.NodeID),
				Seq: env.Seq, Level: a.Level(),
			}) == nil {
				a.acksSent.Inc()
			}
		}
	}

	go func() {
		defer close(readDone)
		var env wire.Envelope
		for {
			if err := conn.RecvInto(&env); err != nil {
				// A corrupt frame (checksum mismatch, undecodable line)
				// is counted and skipped — the framing layer has already
				// resynchronised past it. Only fatal decode errors and
				// I/O errors end the session.
				var de *wire.DecodeError
				if errors.As(err, &de) && de.Recoverable() {
					a.decodeErrs.Inc()
					continue
				}
				readErr <- err
				return
			}
			// Any manager traffic (command, ping, batch) re-arms the
			// dead-man switch.
			a.touchContact()
			handle(env, 0)
		}
	}()

	// Passive mode: no synthetic node to tick and no sampling clock of
	// our own — expose the send path for PushReading and wait for the
	// connection to end. The dead-man switch still runs on wall time.
	if a.cfg.Passive {
		a.mu.Lock()
		a.send = send
		a.mu.Unlock()
		defer func() {
			a.mu.Lock()
			a.send = nil
			a.mu.Unlock()
		}()
		var watchdog <-chan time.Time
		if a.cfg.FailsafeAfter > 0 {
			t := time.NewTicker(a.cfg.SampleEvery)
			defer t.Stop()
			watchdog = t.C
		}
		for {
			select {
			case <-ctx.Done():
				return nil
			case err := <-readErr:
				return err
			case <-watchdog:
				a.failsafeCheck()
			}
		}
	}

	// Writer: tick the node and push samples. Sends are serialised on
	// this goroutine only.
	tick := time.NewTicker(a.cfg.TickEvery)
	defer tick.Stop()
	nextSample := a.cfg.SampleEvery
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-readErr:
			return err
		case <-tick.C:
			a.mu.Lock()
			a.step()
			clock := a.clock
			a.mu.Unlock()
			// A connected-but-silent manager (e.g. wedged control loop,
			// asymmetric partition on the command path) must trip the
			// switch too, not just a broken connection.
			a.failsafeCheck()
			if clock >= nextSample {
				nextSample += a.cfg.SampleEvery
				if err := send(wire.SampleEnvelope(a.sample())); err != nil {
					return err
				}
				a.samplesPushed.Inc()
			}
		}
	}
}
