package agentd

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/power"
	"repro/internal/wire"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: power.TianheNode(), SampleEvery: 0, TickEvery: time.Millisecond}); err == nil {
		t.Error("zero sample interval accepted")
	}
	if _, err := New(Config{Model: power.TianheNode(), SampleEvery: time.Second, TickEvery: 0}); err == nil {
		t.Error("zero tick interval accepted")
	}
	if _, err := New(Config{SampleEvery: time.Second, TickEvery: time.Second}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestRunDialFailure(t *testing.T) {
	a, err := New(Config{
		NodeID: 1, ManagerAddr: "127.0.0.1:1",
		SampleEvery: 10 * time.Millisecond, TickEvery: time.Millisecond,
		Model: power.TianheNode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background()); err == nil {
		t.Error("dial to dead address succeeded")
	}
}

// TestAgentProtocol runs a bare TCP server standing in for the manager and
// checks the agent's hello, sample cadence and command handling.
func TestAgentProtocol(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		hello   wire.Envelope
		samples []wire.Envelope
	}
	resCh := make(chan result, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(raw)
		var res result
		res.hello, _ = c.Recv()
		// Collect three samples, then command level 2.
		for len(res.samples) < 3 {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == wire.KindSample {
				res.samples = append(res.samples, env)
			}
		}
		_ = c.Send(wire.Envelope{Type: wire.KindCommand, Node: 7, Level: 2})
		resCh <- res
	}()

	a, err := New(Config{
		NodeID: 7, ManagerAddr: ln.Addr().String(),
		SampleEvery: 30 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = a.Run(ctx) }()

	select {
	case res := <-resCh:
		if res.hello.Type != wire.KindHello || res.hello.Node != 7 || res.hello.MaxLevel != 9 {
			t.Errorf("hello = %+v", res.hello)
		}
		for i, s := range res.samples {
			if s.Node != 7 {
				t.Errorf("sample = %+v", s)
			}
			// The first sample is a warm-up with an empty delta (no
			// previous snapshot); later ones carry real counters.
			if i > 0 && s.MemTotal == 0 {
				t.Errorf("sample %d has empty delta: %+v", i, s)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no samples received")
	}

	// The command must eventually be applied.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Level() == 2 && a.CommandsApplied() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("command not applied: level=%d applied=%d", a.Level(), a.CommandsApplied())
}

// TestCommandAckAndHelloLevel: a command must be acknowledged with its
// sequence number and the applied level, and a reconnect's hello must
// carry the throttled level rather than implying full power.
func TestCommandAckAndHelloLevel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type round struct {
		hello wire.Envelope
		ack   wire.Envelope
	}
	rounds := make(chan round, 2)
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			c := wire.NewConn(raw)
			var r round
			r.hello, _ = c.Recv()
			// Throttle to level 4 with a distinctive sequence number,
			// then wait for the ack (skipping samples).
			_ = c.Send(wire.Envelope{Type: wire.KindCommand, Level: 4, Seq: 99})
			for {
				env, err := c.Recv()
				if err != nil {
					return
				}
				if env.Type == wire.KindAck {
					r.ack = env
					break
				}
			}
			rounds <- r
			c.Close() // slam shut: force the agent to redial
		}
	}()

	a, err := New(Config{
		NodeID: 5, ManagerAddr: ln.Addr().String(),
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.RunWithReconnect(ctx, 10*time.Millisecond, 50*time.Millisecond)

	get := func() round {
		select {
		case r := <-rounds:
			return r
		case <-time.After(10 * time.Second):
			t.Fatal("no round completed")
			return round{}
		}
	}
	first := get()
	if first.hello.Level != 9 {
		t.Errorf("first hello level = %d, want full power 9", first.hello.Level)
	}
	if first.ack.Seq != 99 || first.ack.Level != 4 || first.ack.Node != 5 {
		t.Errorf("ack = %+v, want seq 99 level 4 node 5", first.ack)
	}
	second := get()
	// The reconnect hello must report the throttled level.
	if second.hello.Level != 4 {
		t.Errorf("reconnect hello level = %d, want 4", second.hello.Level)
	}
}

// TestBatchedCommandApplied: a command arriving inside a batch frame (the
// manager's coalesced command+heartbeat write) must be applied and acked
// exactly like a bare command, and the ping in the same frame must count
// as manager contact. Batches must not nest: a command wrapped two levels
// deep is ignored.
func TestBatchedCommandApplied(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	acks := make(chan wire.Envelope, 4)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(raw)
		_, _ = c.Recv() // hello
		_ = c.SendBatch([]wire.Envelope{
			{Type: wire.KindCommand, Level: 3, Seq: 7},
			{Type: wire.KindPing},
		})
		// Nested batch: the inner command must NOT be applied.
		_ = c.Send(wire.Envelope{Type: wire.KindBatch, Batch: []wire.Envelope{
			{Type: wire.KindBatch, Batch: []wire.Envelope{
				{Type: wire.KindCommand, Level: 0, Seq: 8},
			}},
		}})
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == wire.KindAck {
				acks <- env
			}
		}
	}()

	a, err := New(Config{
		NodeID: 6, ManagerAddr: ln.Addr().String(),
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = a.Run(ctx) }()

	select {
	case ack := <-acks:
		if ack.Seq != 7 || ack.Level != 3 {
			t.Errorf("ack = %+v, want seq 7 level 3", ack)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batched command never acked")
	}
	// The nested command would ack seq 8 and floor the node; give it a
	// moment to (not) happen.
	time.Sleep(100 * time.Millisecond)
	if lvl := a.Level(); lvl != 3 {
		t.Errorf("level = %d, want 3 (nested batch command must be ignored)", lvl)
	}
	select {
	case ack := <-acks:
		t.Errorf("nested batch command acked: %+v", ack)
	default:
	}
}

// TestDeadManSwitchTripsWhileDisconnected: with no manager listening, the
// dead-man switch must self-degrade the node to the failsafe floor within
// the grace window, and report the trip.
func TestDeadManSwitchTripsWhileDisconnected(t *testing.T) {
	a, err := New(Config{
		NodeID: 1, ManagerAddr: "127.0.0.1:1",
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 1,
		FailsafeAfter: 3, FailsafeLevel: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		a.RunWithReconnect(ctx, 10*time.Millisecond, 50*time.Millisecond)
		close(done)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Tripped() && a.Level() == 0 && a.FailsafeTrips() == 1 {
			cancel()
			<-done
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dead-man switch never tripped: level=%d tripped=%v trips=%d",
		a.Level(), a.Tripped(), a.FailsafeTrips())
}

// TestDeadManSwitchSilentManagerAndRecovery: a connected manager that
// never sends anything must trip the switch; a ping re-arms it without
// moving the level (reconciliation is the manager's job).
func TestDeadManSwitchSilentManagerAndRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan *wire.Conn, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(raw)
		// Drain the agent's stream so writes never block, but stay silent.
		go func() {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}()
		connCh <- c
	}()

	a, err := New(Config{
		NodeID: 2, ManagerAddr: ln.Addr().String(),
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 4,
		FailsafeAfter: 3, FailsafeLevel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.RunWithReconnect(ctx, 10*time.Millisecond, 50*time.Millisecond)

	var mconn *wire.Conn
	select {
	case mconn = <-connCh:
	case <-time.After(5 * time.Second):
		t.Fatal("agent never connected")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Tripped() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !a.Tripped() || a.Level() != 1 {
		t.Fatalf("silent manager did not trip switch: level=%d tripped=%v", a.Level(), a.Tripped())
	}

	// A heartbeat re-arms the switch; the level stays at the floor until
	// the manager reconciles with an explicit command.
	if err := mconn.Send(wire.Envelope{Type: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !a.Tripped() {
			if got := a.Level(); got != 1 {
				t.Errorf("ping moved the level to %d; reconciliation is the manager's job", got)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("ping never re-armed the dead-man switch")
}

func TestFailsafeConfigValidation(t *testing.T) {
	bad := Config{
		NodeID: 1, SampleEvery: time.Second, TickEvery: time.Millisecond,
		Model: power.TianheNode(), FailsafeAfter: 2, FailsafeLevel: 99,
	}
	if _, err := New(bad); err == nil {
		t.Error("out-of-range failsafe level accepted")
	}
	bad.FailsafeLevel = -1
	if _, err := New(bad); err == nil {
		t.Error("negative failsafe level accepted")
	}
}

func TestSyntheticLoadVaries(t *testing.T) {
	a, err := New(Config{
		NodeID: 1, SampleEvery: 100 * time.Millisecond, TickEvery: 10 * time.Millisecond,
		Model: power.TianheNode(), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the synthetic pattern directly and check it produces
	// non-trivial utilisation over time.
	busySeen, idleSeen := false, false
	for i := 0; i < 20000; i++ {
		a.step()
		r := a.sample()
		if r.Delta.CPUUtil > 0.3 {
			busySeen = true
		}
		if r.Delta.CPUUtil < 0.1 {
			idleSeen = true
		}
	}
	if !busySeen || !idleSeen {
		t.Errorf("synthetic load not varying: busy=%v idle=%v", busySeen, idleSeen)
	}
}

func TestRunWithReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A rude server: accept, read the hello, slam the connection shut.
	// The agent must come back.
	conns := make(chan struct{}, 16)
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			c := wire.NewConn(raw)
			_, _ = c.Recv() // hello
			conns <- struct{}{}
			c.Close()
		}
	}()
	a, err := New(Config{
		NodeID: 1, ManagerAddr: ln.Addr().String(),
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		a.RunWithReconnect(ctx, 10*time.Millisecond, 50*time.Millisecond)
		close(done)
	}()

	// At least three distinct connections within the deadline.
	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < 3 {
		select {
		case <-conns:
			seen++
		case <-deadline:
			t.Fatalf("only %d reconnects", seen)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunWithReconnect did not stop on cancel")
	}
}

func TestPassiveConfigValidation(t *testing.T) {
	apply := func(level int) (int, error) { return level, nil }
	base := Config{
		NodeID: 1, ManagerAddr: "127.0.0.1:1",
		SampleEvery: time.Second, TickEvery: time.Second,
		Model: power.TianheNode(),
	}
	cases := map[string]func(*Config){
		"nil Apply":         func(c *Config) { c.Passive = true },
		"negative max":      func(c *Config) { c.Passive = true; c.Apply = apply; c.MaxLevel = -1 },
		"initial above max": func(c *Config) { c.Passive = true; c.Apply = apply; c.MaxLevel = 5; c.InitialLevel = 6 },
		"failsafe above max": func(c *Config) {
			c.Passive = true
			c.Apply = apply
			c.MaxLevel = 5
			c.FailsafeAfter = 3
			c.FailsafeLevel = 6
		},
		"negative failsafe lvl": func(c *Config) {
			c.Passive = true
			c.Apply = apply
			c.MaxLevel = 5
			c.FailsafeAfter = 3
			c.FailsafeLevel = -1
		},
	}
	for name, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	cfg := base
	cfg.Passive, cfg.Apply, cfg.MaxLevel, cfg.InitialLevel = true, apply, 9, 7
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Level() != 7 {
		t.Errorf("Level = %d, want InitialLevel 7", a.Level())
	}
}

func TestPassivePushReadingRequiresConnection(t *testing.T) {
	a, err := New(Config{
		NodeID: 1, ManagerAddr: "127.0.0.1:1",
		SampleEvery: time.Second, TickEvery: time.Second,
		Model:   power.TianheNode(),
		Passive: true, MaxLevel: 9,
		Apply: func(level int) (int, error) { return level, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PushReading(manager.AgentReading{ID: 1, Level: 9, MaxLevel: 9}); err == nil {
		t.Error("PushReading succeeded while disconnected")
	}
}

// TestPassiveProtocol drives a passive relay agent against a bare TCP
// stand-in manager: the hello must advertise the external node's levels,
// PushReading must surface as a wire sample, and a command must round-trip
// through the Apply callback into an ack carrying the applied level.
func TestPassiveProtocol(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	helloCh := make(chan wire.Envelope, 1)
	sampleCh := make(chan wire.Envelope, 1)
	ackCh := make(chan wire.Envelope, 1)
	connCh := make(chan *wire.Conn, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(raw)
		connCh <- c
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			switch env.Type {
			case wire.KindHello:
				helloCh <- env
			case wire.KindSample:
				sampleCh <- env
			case wire.KindAck:
				ackCh <- env
			}
		}
	}()

	var mu sync.Mutex
	extLevel := 7 // the externally owned node's actual state
	a, err := New(Config{
		NodeID: 4, ManagerAddr: ln.Addr().String(),
		SampleEvery: time.Hour, TickEvery: time.Hour, // no self-paced traffic
		Model:   power.TianheNode(),
		Passive: true, MaxLevel: 9, InitialLevel: 7,
		Apply: func(level int) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			extLevel = level
			return extLevel, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = a.Run(ctx) }()

	var conn *wire.Conn
	select {
	case hello := <-helloCh:
		if hello.Node != 4 || hello.MaxLevel != 9 || hello.Level != 7 {
			t.Fatalf("hello = %+v, want node 4 max 9 level 7", hello)
		}
		conn = <-connCh
	case <-time.After(5 * time.Second):
		t.Fatal("no hello")
	}

	// Push one reading on the driver's clock.
	r := manager.AgentReading{ID: 4, Level: 7, MaxLevel: 9, Job: 2}
	r.Delta.CPUUtil = 0.9
	r.Delta.Interval = 250 * time.Millisecond
	waitFor := time.Now().Add(5 * time.Second)
	for {
		if err := a.PushReading(r); err == nil {
			break
		} else if time.Now().After(waitFor) {
			t.Fatalf("PushReading never connected: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case s := <-sampleCh:
		if s.Node != 4 || s.Level != 7 || s.CPUUtil != 0.9 || s.IntervalMS != 250 || s.Job != 2 {
			t.Errorf("sample = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no sample")
	}

	// Command level 3: Apply mutates the external node, ack reports it.
	if err := conn.Send(wire.Envelope{Type: wire.KindCommand, Node: 4, Level: 3, Seq: 11}); err != nil {
		t.Fatal(err)
	}
	select {
	case ack := <-ackCh:
		if ack.Seq != 11 || ack.Level != 3 {
			t.Errorf("ack = %+v, want seq 11 level 3", ack)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ack")
	}
	mu.Lock()
	got := extLevel
	mu.Unlock()
	if got != 3 {
		t.Errorf("external node level = %d, want 3", got)
	}
	if a.Level() != 3 {
		t.Errorf("agent cached level = %d, want 3", a.Level())
	}
	if a.CommandsApplied() != 1 {
		t.Errorf("CommandsApplied = %d, want 1", a.CommandsApplied())
	}
}
