package agentd

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/wire"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: power.TianheNode(), SampleEvery: 0, TickEvery: time.Millisecond}); err == nil {
		t.Error("zero sample interval accepted")
	}
	if _, err := New(Config{Model: power.TianheNode(), SampleEvery: time.Second, TickEvery: 0}); err == nil {
		t.Error("zero tick interval accepted")
	}
	if _, err := New(Config{SampleEvery: time.Second, TickEvery: time.Second}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestRunDialFailure(t *testing.T) {
	a, err := New(Config{
		NodeID: 1, ManagerAddr: "127.0.0.1:1",
		SampleEvery: 10 * time.Millisecond, TickEvery: time.Millisecond,
		Model: power.TianheNode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background()); err == nil {
		t.Error("dial to dead address succeeded")
	}
}

// TestAgentProtocol runs a bare TCP server standing in for the manager and
// checks the agent's hello, sample cadence and command handling.
func TestAgentProtocol(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		hello   wire.Envelope
		samples []wire.Envelope
	}
	resCh := make(chan result, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(raw)
		var res result
		res.hello, _ = c.Recv()
		// Collect three samples, then command level 2.
		for len(res.samples) < 3 {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == wire.KindSample {
				res.samples = append(res.samples, env)
			}
		}
		_ = c.Send(wire.Envelope{Type: wire.KindCommand, Node: 7, Level: 2})
		resCh <- res
	}()

	a, err := New(Config{
		NodeID: 7, ManagerAddr: ln.Addr().String(),
		SampleEvery: 30 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = a.Run(ctx) }()

	select {
	case res := <-resCh:
		if res.hello.Type != wire.KindHello || res.hello.Node != 7 || res.hello.MaxLevel != 9 {
			t.Errorf("hello = %+v", res.hello)
		}
		for i, s := range res.samples {
			if s.Node != 7 {
				t.Errorf("sample = %+v", s)
			}
			// The first sample is a warm-up with an empty delta (no
			// previous snapshot); later ones carry real counters.
			if i > 0 && s.MemTotal == 0 {
				t.Errorf("sample %d has empty delta: %+v", i, s)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no samples received")
	}

	// The command must eventually be applied.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Level() == 2 && a.CommandsApplied() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("command not applied: level=%d applied=%d", a.Level(), a.CommandsApplied())
}

func TestSyntheticLoadVaries(t *testing.T) {
	a, err := New(Config{
		NodeID: 1, SampleEvery: 100 * time.Millisecond, TickEvery: 10 * time.Millisecond,
		Model: power.TianheNode(), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the synthetic pattern directly and check it produces
	// non-trivial utilisation over time.
	busySeen, idleSeen := false, false
	for i := 0; i < 20000; i++ {
		a.step()
		r := a.sample()
		if r.Delta.CPUUtil > 0.3 {
			busySeen = true
		}
		if r.Delta.CPUUtil < 0.1 {
			idleSeen = true
		}
	}
	if !busySeen || !idleSeen {
		t.Errorf("synthetic load not varying: busy=%v idle=%v", busySeen, idleSeen)
	}
}

func TestRunWithReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A rude server: accept, read the hello, slam the connection shut.
	// The agent must come back.
	conns := make(chan struct{}, 16)
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			c := wire.NewConn(raw)
			_, _ = c.Recv() // hello
			conns <- struct{}{}
			c.Close()
		}
	}()
	a, err := New(Config{
		NodeID: 1, ManagerAddr: ln.Addr().String(),
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		a.RunWithReconnect(ctx, 10*time.Millisecond, 50*time.Millisecond)
		close(done)
	}()

	// At least three distinct connections within the deadline.
	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < 3 {
		select {
		case <-conns:
			seen++
		case <-deadline:
			t.Fatalf("only %d reconnects", seen)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunWithReconnect did not stop on cancel")
	}
}
