package agentd

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/wire"
)

// High-availability behaviour of the agent: epoch fencing against a
// deposed leader, and endpoint rotation across a primary/standby address
// list.

// scriptedManagers hands Run one server-side pipe per session; the test
// plays the manager role on each in turn.
func scriptedManagers(ctx context.Context) (dial func(context.Context) (net.Conn, error), sessions chan *wire.Conn) {
	sessions = make(chan *wire.Conn, 8)
	dial = func(dctx context.Context) (net.Conn, error) {
		s, c := net.Pipe()
		select {
		case sessions <- wire.NewConn(s):
			return c, nil
		case <-dctx.Done():
			s.Close()
			c.Close()
			return nil, dctx.Err()
		}
	}
	return dial, sessions
}

// recvUntil reads frames until one of type want arrives (skipping the
// agent's samples), with a deadline.
func recvUntil(t *testing.T, c *wire.Conn, want string) wire.Envelope {
	t.Helper()
	done := make(chan wire.Envelope, 1)
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				close(done)
				return
			}
			if env.Type == want {
				done <- env
				return
			}
		}
	}()
	select {
	case env, ok := <-done:
		if !ok {
			t.Fatalf("connection closed waiting for %q", want)
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
	}
	return wire.Envelope{}
}

// TestEpochFencingRefusesDeposedLeader scripts three manager sessions: a
// live leader at epoch 5 whose command applies; a deposed leader at epoch
// 3 whose command must be refused (session closed, level untouched); and
// the leader again, proving the agent still follows the newest epoch.
func TestEpochFencingRefusesDeposedLeader(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dial, sessions := scriptedManagers(ctx)
	a, err := New(Config{
		NodeID: 1, Dial: dial,
		SampleEvery: 20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); a.RunWithReconnect(ctx, 5*time.Millisecond, 20*time.Millisecond) }()
	defer func() { cancel(); <-done }()

	// Session 1: the live leader. The agent's hello reports epoch 0 (never
	// met a leader); we announce epoch 5 and command level 2.
	m1 := <-sessions
	hello := recvUntil(t, m1, wire.KindHello)
	if hello.Epoch != 0 {
		t.Fatalf("first hello claims epoch %d", hello.Epoch)
	}
	if err := m1.Send(wire.Envelope{Type: wire.KindHello, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Send(wire.Envelope{Type: wire.KindCommand, Seq: 1, Level: 2}); err != nil {
		t.Fatal(err)
	}
	ack := recvUntil(t, m1, wire.KindAck)
	if ack.Seq != 1 || ack.Level != 2 {
		t.Fatalf("leader command not applied: %+v", ack)
	}
	m1.Close()

	// Session 2: a deposed leader still announcing epoch 3. The agent must
	// refuse the session before any command lands.
	m2 := <-sessions
	h2 := recvUntil(t, m2, wire.KindHello)
	if h2.Epoch != 5 {
		t.Fatalf("reconnect hello should report max epoch 5, got %d", h2.Epoch)
	}
	_ = m2.Send(wire.Envelope{Type: wire.KindHello, Epoch: 3})
	_ = m2.Send(wire.Envelope{Type: wire.KindCommand, Seq: 2, Level: 7}) // may race the close
	// The agent tears the session down; our reads fail once it does.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m2.Recv(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("agent kept the stale-epoch session alive")
		}
	}
	if got := a.Level(); got != 2 {
		t.Fatalf("deposed leader changed the level: %d", got)
	}
	if a.StaleEpochRejects() != 1 {
		t.Fatalf("stale_epoch_rejects = %d, want 1", a.StaleEpochRejects())
	}

	// Session 3: the live leader again at epoch 5 — still accepted.
	m3 := <-sessions
	recvUntil(t, m3, wire.KindHello)
	if err := m3.Send(wire.Envelope{Type: wire.KindHello, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m3.Send(wire.Envelope{Type: wire.KindCommand, Seq: 3, Level: 1}); err != nil {
		t.Fatal(err)
	}
	ack = recvUntil(t, m3, wire.KindAck)
	if ack.Seq != 3 || ack.Level != 1 {
		t.Fatalf("leader command after fencing episode not applied: %+v", ack)
	}
	if a.MaxEpoch() != 5 {
		t.Fatalf("max epoch = %d, want 5", a.MaxEpoch())
	}
	m3.Close()
}

// TestManagerAddrsRotation points the agent at a dead primary address and
// a live standby: the reconnect loop must rotate to the standby instead
// of hammering the dead endpoint forever.
func TestManagerAddrsRotation(t *testing.T) {
	// Reserve a port, then close it: the primary address refuses dials.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	a, err := New(Config{
		NodeID:       2,
		ManagerAddrs: []string{deadAddr, ln.Addr().String()},
		SampleEvery:  20 * time.Millisecond, TickEvery: 5 * time.Millisecond,
		Model: power.TianheNode(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.RunWithReconnect(ctx, 5*time.Millisecond, 20*time.Millisecond) }()
	defer func() { cancel(); <-done }()

	type accepted struct {
		hello wire.Envelope
		err   error
	}
	got := make(chan accepted, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			got <- accepted{err: err}
			return
		}
		c := wire.NewConn(raw)
		env, err := c.Recv()
		got <- accepted{hello: env, err: err}
	}()
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.hello.Type != wire.KindHello || r.hello.Node != 2 {
			t.Fatalf("standby got %+v", r.hello)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent never rotated to the standby address")
	}
}
