// Federated fan-out benchmark: the two-tier control plane at scale. A
// fedd coordinator governs total/128 cabinet managers of 128 fake agents
// each; every iteration steps one full federation round — a coordinator
// cycle (classify cabinets, divide the budget, send every grant) plus
// one complete Algorithm-1 cycle with full command fan-out inside every
// cabinet. The point of the architecture is that per-agent cost stays at
// the 128-agent sweet spot no matter how many cabinets are federated,
// where a single flat manager degrades super-linearly past a few
// thousand agents (see BenchmarkCycleFanout at 4096).
//
// Results persist to BENCH_fanout.json as bench "CycleFanoutFed" keyed
// by total agent count; CI guards the 16384-agent baseline.
package repro_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/fedd"
	"repro/internal/managerd"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

// fedSweep is the total-agent axis; every size is fedCabinetSize agents
// per cabinet, so 16384 is a 128-cabinet federation.
var fedSweep = []int{1024, 4096, 16384}

const fedCabinetSize = 128

// fedBenchFleet is a coordinator plus cabinets, each a benchFleet held in
// sustained red by its grant: the coordinator's budget is 1 W per cabinet
// (equal-split grants P_L 1 W / P_H 2 W), far below any fleet's draw.
type fedBenchFleet struct {
	coord    *fedd.Server
	coordNet *faultnet.Network
	cabs     []*benchFleet
}

func startFedBenchFleet(b *testing.B, total int) *fedBenchFleet {
	b.Helper()
	cabinets := total / fedCabinetSize
	coordNet := faultnet.New(9001)
	coord, err := fedd.New(fedd.Config{
		Listener:     coordNet.Listener(),
		Budget:       units.Watts(cabinets),
		PH:           units.Watts(2 * cabinets),
		ControlEvery: time.Hour, // cycles driven explicitly via StepCycle
		StaleAfter:   time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		b.Fatal(err)
	}
	f := &fedBenchFleet{coord: coord, coordNet: coordNet}
	// Registered before the cabinets' cleanups, so LIFO order stops every
	// cabinet (closing its federation conn) before the coordinator.
	b.Cleanup(func() {
		coord.Stop()
		coordNet.Close()
	})

	for cab := 0; cab < cabinets; cab++ {
		cab := cab
		nw := faultnet.New(1 + int64(cab))
		srv, err := managerd.New(managerd.Config{
			Listener:     nw.Listener(),
			Model:        power.TianheNode(),
			Policy:       policy.MPCC{},
			Tg:           3,
			ControlEvery: time.Hour,
			Thresholds:   power.Thresholds{PL: 1, PH: 2},
			Cabinet:      cab,
			CoordinatorDial: func() (net.Conn, error) {
				return coordNet.Dial(context.Background(), uint64(cab))
			},
			ReportEvery:    time.Hour,
			StaleAfter:     time.Hour,
			CommandTimeout: 5 * time.Second,
			HeartbeatEvery: -1,
			Shards:         128,
			FanoutWorkers:  4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		cf := &benchFleet{srv: srv, nw: nw}
		b.Cleanup(func() {
			srv.Stop()
			nw.Close()
		})
		f.cabs = append(f.cabs, cf)
		cf.wireAgents(b, fedCabinetSize)
	}

	// Every cabinet subscribed, one coordinator round grants them all,
	// and each cabinet's control loop must be governed (running on its
	// granted band) before timing starts.
	deadline := time.Now().Add(60 * time.Second)
	for len(f.coord.CabinetStates()) != cabinets {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d cabinets subscribed", len(f.coord.CabinetStates()), cabinets)
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.coord.StepCycle()
	for _, cf := range f.cabs {
		for !cf.srv.Status().Governed {
			if time.Now().After(deadline) {
				b.Fatalf("cabinet never governed: %+v", cf.srv.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
		cf.warmRed(b)
	}
	return f
}

// step runs one federation round: a coordinator cycle, then a full
// control cycle in every cabinet. Returns the summed in-cabinet fan-out
// time.
func (f *fedBenchFleet) step() time.Duration {
	f.coord.StepCycle()
	var fanout time.Duration
	for _, cf := range f.cabs {
		fanout += cf.srv.StepCycle()
	}
	return fanout
}

// BenchmarkCycleFanoutFed measures one federation round per iteration:
// budget division plus grant fan-out at the coordinator tier and a full
// Algorithm-1 cycle with N-node command fan-out across all cabinets.
func BenchmarkCycleFanoutFed(b *testing.B) {
	for _, n := range fedSweep {
		n := n
		b.Run("n"+itoa(n), func(b *testing.B) {
			f := startFedBenchFleet(b, n)
			b.ReportAllocs()
			ms := newMemTrack()
			b.ResetTimer()
			var fanout time.Duration
			for i := 0; i < b.N; i++ {
				fanout += f.step()
			}
			b.StopTimer()
			allocsOp, bytesOp := ms.perOp(b.N)
			nsOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(nsOp/float64(n), "ns/agent")
			recordBench(benchEntry{
				Bench: "CycleFanoutFed", Agents: n,
				NsPerOp:     nsOp,
				AllocsPerOp: allocsOp,
				BytesPerOp:  bytesOp,
				FanoutUS:    fanout.Microseconds() / int64(b.N),
			})
		})
	}
}
