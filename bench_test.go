// Package repro_test holds the benchmark harness that regenerates every
// figure of the paper's evaluation section, plus micro-benchmarks of the
// architecture's hot paths.
//
// Figure benchmarks (one per paper figure; custom metrics carry the
// figure's headline numbers so `go test -bench` output doubles as the
// reproduction record):
//
//	BenchmarkFigure5ManagerCost     – manager CPU cost vs |A_candidate| (measured over TCP)
//	BenchmarkFigure6CandidateSweep  – capping effect vs |A_candidate|
//	BenchmarkFigure7Policies        – MPC vs HRI vs uncapped at 128 candidates
//	BenchmarkThresholdLearning      – §III.A threshold rule
//	BenchmarkAblationTg/Period/Margins – design-parameter ablations
//
// Micro-benchmarks cover formula (1) evaluation, policy selection on a
// 128-node snapshot, a full simulated control cycle, and the event engine.
package repro_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// benchScale keeps the figure benchmarks to a few seconds per iteration
// while preserving the paper's class-D regime.
func benchScale() experiment.Scale {
	return experiment.Scale{
		Class:    workload.ClassD,
		Training: 90 * time.Minute,
		Eval:     4 * time.Hour,
		Seeds:    []uint64{1},
	}
}

// BenchmarkFigure7Policies regenerates Figure 7. Reported metrics:
// perf_mpc / perf_hri (paper ≈0.98), pmaxcut_* (paper ≈0.10) and
// dpxtcut_* (paper 0.73 / 0.66).
func BenchmarkFigure7Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiment.Figure7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			switch r.Policy {
			case "mpc", "hri":
				b.ReportMetric(r.Performance, "perf_"+r.Policy)
				b.ReportMetric(r.PMaxReduction, "pmaxcut_"+r.Policy)
				b.ReportMetric(r.OverspendReduction, "dpxtcut_"+r.Policy)
			}
		}
	}
}

// BenchmarkFigure6CandidateSweep regenerates Figure 6 for MPC at three
// candidate sizes; reported metrics are the normalised ΔP×T values (paper:
// falling with size, diminishing beyond ≈48).
func BenchmarkFigure6CandidateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Figure6(benchScale(), []int{0, 48, 128}, []string{"mpc"})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.K > 0 {
				b.ReportMetric(p.OverspendNorm, "dpxtnorm_k"+itoa(p.K))
			}
		}
	}
}

// BenchmarkFigure5ManagerCost regenerates Figure 5 on the real daemons;
// reported metrics are the measured manager CPU utilisations.
func BenchmarkFigure5ManagerCost(b *testing.B) {
	cfg := experiment.Figure5Config{
		Sizes:        []int{16, 64, 128},
		PerSize:      1500 * time.Millisecond,
		ControlEvery: 50 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.CPUUtil, "cpu_n"+itoa(p.Agents))
		}
	}
}

// BenchmarkThresholdLearning verifies the §III.A rule end to end; metrics
// report P_L/peak (paper 0.84) and P_H/peak (paper 0.93).
func BenchmarkThresholdLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiment.Thresholds(experiment.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].PLOverPeak, "pl_over_peak")
		b.ReportMetric(rs[0].PHOverPeak, "ph_over_peak")
	}
}

// BenchmarkAblationTg sweeps the steady-green patience (design choice,
// paper fixes T_g=10); metric reports the perf spread across the sweep.
func BenchmarkAblationTg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.AblationTg(experiment.Quick(), []int{1, 10, 50})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1.0, 0.0
		for _, p := range pts {
			if p.Performance < lo {
				lo = p.Performance
			}
			if p.Performance > hi {
				hi = p.Performance
			}
		}
		b.ReportMetric(hi-lo, "perf_spread")
	}
}

// BenchmarkAblationPeriod sweeps the control cycle τ; metric reports the
// ΔP×T-cut loss from a 1 s to an 8 s cycle (sensing lag).
func BenchmarkAblationPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.AblationPeriod(experiment.Quick(),
			[]time.Duration{time.Second, 8 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].OverspendReduction-pts[1].OverspendReduction, "dpxtcut_lag_loss")
	}
}

// BenchmarkAblationMargins sweeps the threshold margins around the paper's
// 16%/7%.
func BenchmarkAblationMargins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.AblationMargins(experiment.Quick(),
			[][2]float64{{0.10, 0.05}, {0.16, 0.07}, {0.24, 0.12}})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			_ = p
		}
		b.ReportMetric(pts[1].Performance, "perf_paper_margins")
	}
}

// BenchmarkThermalStudy regenerates the §I.A thermal comparison; metrics
// report the capped-vs-uncapped peak temperature and failure-multiplier
// deltas.
func BenchmarkThermalStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.ThermalStudy(experiment.Quick(), []string{"none", "mpc"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].PeakC-pts[1].PeakC, "peakC_saved")
		b.ReportMetric(pts[0].FailureMultiplier-pts[1].FailureMultiplier, "failx_saved")
	}
}

// BenchmarkControllerStudy compares Algorithm 1 against the feedback PI
// baseline; metric reports Algorithm 1's ΔP×T-cut advantage.
func BenchmarkControllerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.ControllerStudy(experiment.Quick())
		if err != nil {
			b.Fatal(err)
		}
		var alg1, fb float64
		for _, p := range pts {
			switch p.Name {
			case "algorithm1+mpc":
				alg1 = p.OverspendReduction
			case "feedback-pi":
				fb = p.OverspendReduction
			}
		}
		b.ReportMetric(alg1-fb, "dpxtcut_advantage")
	}
}

// BenchmarkPrivilegedJobs sweeps dynamic candidate membership (§II.A);
// metric reports how much ΔP×T cut survives when 50% of jobs are pinned.
func BenchmarkPrivilegedJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.PrivilegedJobs(experiment.Quick(), []float64{0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].OverspendReduction, "dpxtcut_at_50pct_priv")
	}
}

// BenchmarkCabinetStudy sweeps placement × policy on the 4-cabinet
// distribution model; metric reports how much breaker-trip exposure
// spread placement removes under MPC.
func BenchmarkCabinetStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.CabinetStudy(experiment.Quick())
		if err != nil {
			b.Fatal(err)
		}
		var packed, spread float64
		for _, p := range pts {
			if p.Policy != "mpc" {
				continue
			}
			if p.Placement == "firstfit" {
				packed = p.TripRisk
			} else {
				spread = p.TripRisk
			}
		}
		b.ReportMetric(packed-spread, "triprisk_removed")
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the hot paths.

// BenchmarkFormula1Estimate measures one power profile model evaluation —
// the per-node, per-cycle cost of the sensing path.
func BenchmarkFormula1Estimate(b *testing.B) {
	m := power.TianheNode()
	d := procfs.Delta{
		Interval: time.Second, CPUUtil: 0.8,
		MemUsed: 24 << 30, MemTotal: 48 << 30, NICBytes: 1 << 28,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Estimate(d, 7)
	}
}

// snapshot128 builds a realistic 128-node, 4-job policy snapshot.
func snapshot128() *policy.Snapshot {
	rng := rand.New(rand.NewSource(1))
	s := &policy.Snapshot{P: units.KW(34), PL: units.KW(33)}
	jobs := map[workload.JobID]*policy.JobState{}
	for i := 0; i < 128; i++ {
		jid := workload.JobID(1 + i/32)
		est := units.Watts(250 + rng.Float64()*60)
		ns := policy.NodeState{
			ID: node.ID(i), Level: 9, MaxLevel: 9,
			Est: est, EstLower: est - 15,
			PrevEst: est * units.Watts(0.95+rng.Float64()*0.1),
			Job:     jid,
		}
		s.Nodes = append(s.Nodes, ns)
		js, ok := jobs[jid]
		if !ok {
			js = &policy.JobState{ID: jid}
			jobs[jid] = js
		}
		js.Nodes = append(js.Nodes, ns.ID)
		js.Power += ns.Est
		js.PrevPower += ns.PrevEst
		js.Saving += 15
	}
	for _, js := range jobs {
		s.Jobs = append(s.Jobs, *js)
	}
	return s
}

// BenchmarkPolicySelect measures target selection on a full 128-node
// snapshot for each policy family representative.
func BenchmarkPolicySelect(b *testing.B) {
	snap := snapshot128()
	for _, name := range []string{"mpc", "mpc-c", "bfp", "hri", "all"} {
		p, err := policy.New(name, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p.Select(snap)
			}
		})
	}
}

// BenchmarkBuilderBuild measures snapshot assembly from 128 agent
// readings — the manager's per-cycle sensing aggregation.
func BenchmarkBuilderBuild(b *testing.B) {
	model := power.TianheNode()
	readings := make([]manager.AgentReading, 128)
	for i := range readings {
		readings[i] = manager.AgentReading{
			ID: node.ID(i), Level: 9, MaxLevel: 9,
			Delta: procfs.Delta{
				Interval: time.Second, CPUUtil: 0.8,
				MemUsed: 24 << 30, MemTotal: 48 << 30, NICBytes: 1 << 27,
			},
			Job: workload.JobID(1 + i/16),
		}
	}
	bld := manager.NewBuilder(model)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bld.Build(units.KW(34), units.KW(33), readings)
	}
}

// BenchmarkControlCycleSimulated measures one full simulated control cycle
// (tick + collect + build + Algorithm 1) on the 128-node system.
func BenchmarkControlCycleSimulated(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Class = workload.ClassC
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// One virtual second per iteration.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Backend().(*backend.Sim).Engine().RunUntil(time.Duration(i+1) * time.Second)
	}
}

// BenchmarkEngineThroughput measures raw event dispatch.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	e.Every(time.Millisecond, func(*sim.Engine) { n++ })
	b.ResetTimer()
	e.RunUntil(time.Duration(b.N) * time.Millisecond)
	if n < b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
