package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var (
	baseEntries = []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000},
		{Bench: "CycleFanout", Agents: 512, NsPerOp: 4000},
	}
	within = []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1900},
		{Bench: "CycleFanout", Agents: 512, NsPerOp: 3000},
	}
)

func TestGuardPasses(t *testing.T) {
	report, err := guard(baseEntries, within, []string{"CycleFanout"}, []int{128, 512}, 2.0)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, strings.Join(report, "\n"))
	}
	if len(report) != 2 || !strings.Contains(report[0], "ok") {
		t.Errorf("report = %v", report)
	}
}

func TestGuardCatchesRegression(t *testing.T) {
	slow := []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 2100},
		{Bench: "CycleFanout", Agents: 512, NsPerOp: 3000},
	}
	report, err := guard(baseEntries, slow, []string{"CycleFanout"}, []int{128, 512}, 2.0)
	if err == nil || !strings.Contains(err.Error(), "CycleFanout/n128") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(strings.Join(report, "\n"), "REGRESSED") {
		t.Errorf("report = %v", report)
	}
}

func TestGuardCatchesMissingEntry(t *testing.T) {
	_, err := guard(baseEntries, within, []string{"CycleFanout"}, []int{128, 1024}, 2.0)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadAgainstCommittedBaseline(t *testing.T) {
	// The committed BENCH_fanout.json must stay loadable and keep the
	// guarded pairs, or the CI guard would fail on a phantom "missing".
	es, err := load(filepath.Join("..", "..", "BENCH_fanout.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := guard(es, es, []string{"CycleFanout"}, []int{128, 512}, 2.0); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

func TestLoadRejectsBadJSON(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(p); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseAgents(t *testing.T) {
	got, err := parseAgents("128, 512")
	if err != nil || len(got) != 2 || got[0] != 128 || got[1] != 512 {
		t.Errorf("got %v, %v", got, err)
	}
	if _, err := parseAgents("128,many"); err == nil {
		t.Error("bad size accepted")
	}
}
