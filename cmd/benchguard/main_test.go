package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var (
	baseEntries = []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000},
		{Bench: "CycleFanout", Agents: 512, NsPerOp: 4000},
	}
	within = []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1900},
		{Bench: "CycleFanout", Agents: 512, NsPerOp: 3000},
	}
)

func TestGuardPasses(t *testing.T) {
	report, err := guard(baseEntries, within, []string{"CycleFanout"}, []int{128, 512}, 2.0, 0)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, strings.Join(report, "\n"))
	}
	if len(report) != 2 || !strings.Contains(report[0], "ok") {
		t.Errorf("report = %v", report)
	}
}

func TestGuardCatchesRegression(t *testing.T) {
	slow := []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 2100},
		{Bench: "CycleFanout", Agents: 512, NsPerOp: 3000},
	}
	report, err := guard(baseEntries, slow, []string{"CycleFanout"}, []int{128, 512}, 2.0, 0)
	if err == nil || !strings.Contains(err.Error(), "CycleFanout/n128") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(strings.Join(report, "\n"), "REGRESSED") {
		t.Errorf("report = %v", report)
	}
}

func TestGuardAllocsRatio(t *testing.T) {
	base := []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000, AllocsPerOp: 50},
	}
	lean := []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000, AllocsPerOp: 60},
	}
	report, err := guard(base, lean, []string{"CycleFanout"}, []int{128}, 2.0, 1.5)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, strings.Join(report, "\n"))
	}
	if len(report) != 2 || !strings.Contains(report[1], "allocs/op") {
		t.Errorf("report = %v", report)
	}

	bloated := []entry{
		{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000, AllocsPerOp: 90},
	}
	report, err = guard(base, bloated, []string{"CycleFanout"}, []int{128}, 2.0, 1.5)
	if err == nil || !strings.Contains(err.Error(), "CycleFanout/n128 allocs") {
		t.Fatalf("err = %v\n%s", err, strings.Join(report, "\n"))
	}
}

func TestGuardAllocsSkipsWhenAbsent(t *testing.T) {
	// A baseline without allocation data (older file, or allocs measured
	// as zero) skips the allocs check for that pair instead of failing.
	base := []entry{{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000}}
	cand := []entry{{Bench: "CycleFanout", Agents: 128, NsPerOp: 1000, AllocsPerOp: 500}}
	report, err := guard(base, cand, []string{"CycleFanout"}, []int{128}, 2.0, 1.5)
	if err != nil {
		t.Fatalf("absent allocs data failed the guard: %v", err)
	}
	if !strings.Contains(strings.Join(report, "\n"), "skipped") {
		t.Errorf("report = %v", report)
	}
}

func TestGuardCatchesMissingEntry(t *testing.T) {
	_, err := guard(baseEntries, within, []string{"CycleFanout"}, []int{128, 1024}, 2.0, 0)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadAgainstCommittedBaseline(t *testing.T) {
	// The committed BENCH_fanout.json must stay loadable and keep the
	// guarded pairs, or the CI guard would fail on a phantom "missing".
	es, err := load(filepath.Join("..", "..", "BENCH_fanout.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := guard(es, es, []string{"CycleFanout"}, []int{128, 512}, 2.0, 0); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

func TestLoadAgainstCommittedScenarioBaseline(t *testing.T) {
	// The committed BENCH_scenarios.json must stay loadable, cover the
	// whole library, and pass self-comparison on the guarded metric.
	es, err := loadScenarios(filepath.Join("..", "..", "BENCH_scenarios.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(es) < 6 {
		t.Fatalf("committed baseline covers %d scenarios, want >= 6", len(es))
	}
	if _, err := scenarioGuard(es, es, "status_p99_us", 4.0); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

func TestLoadRejectsBadJSON(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(p); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func sce(name string, agents int, metric string, v float64) scenarioEntry {
	return scenarioEntry{"scenario": name, "agents": float64(agents), metric: v}
}

func TestScenarioGuardPasses(t *testing.T) {
	base := []scenarioEntry{
		sce("diurnal", 32, "status_p99_us", 100),
		sce("flash-crowd", 32, "status_p99_us", 200),
	}
	cand := []scenarioEntry{
		sce("diurnal", 32, "status_p99_us", 350),
		sce("flash-crowd", 32, "status_p99_us", 180),
	}
	report, err := scenarioGuard(base, cand, "status_p99_us", 4.0)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, strings.Join(report, "\n"))
	}
	if len(report) != 2 || !strings.Contains(report[0], "ok") {
		t.Errorf("report = %v", report)
	}
}

func TestScenarioGuardCatchesRegression(t *testing.T) {
	base := []scenarioEntry{sce("diurnal", 32, "status_p99_us", 100)}
	cand := []scenarioEntry{sce("diurnal", 32, "status_p99_us", 500)}
	report, err := scenarioGuard(base, cand, "status_p99_us", 4.0)
	if err == nil || !strings.Contains(err.Error(), "diurnal/32") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(strings.Join(report, "\n"), "REGRESSED") {
		t.Errorf("report = %v", report)
	}
}

func TestScenarioGuardMissingScenarioFails(t *testing.T) {
	// A baseline scenario the candidate no longer measures is a coverage
	// loss, never a pass.
	base := []scenarioEntry{
		sce("diurnal", 32, "status_p99_us", 100),
		sce("reconnect-herd", 32, "status_p99_us", 150),
	}
	cand := []scenarioEntry{sce("diurnal", 32, "status_p99_us", 100)}
	report, err := scenarioGuard(base, cand, "status_p99_us", 4.0)
	if err == nil || !strings.Contains(err.Error(), "reconnect-herd/32") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(strings.Join(report, "\n"), "MISSING from candidate") {
		t.Errorf("report = %v", report)
	}
}

func TestScenarioGuardMissingMetricFails(t *testing.T) {
	base := []scenarioEntry{sce("diurnal", 32, "status_p99_us", 100)}
	cand := []scenarioEntry{sce("diurnal", 32, "send_lag_p99_us", 100)}
	if _, err := scenarioGuard(base, cand, "status_p99_us", 4.0); err == nil {
		t.Fatal("metric absent from candidate accepted")
	}
	if _, err := scenarioGuard(cand, base, "status_p99_us", 4.0); err == nil {
		t.Fatal("metric absent from baseline accepted")
	}
}

func TestScenarioGuardNewScenarioPasses(t *testing.T) {
	base := []scenarioEntry{sce("diurnal", 32, "status_p99_us", 100)}
	cand := []scenarioEntry{
		sce("diurnal", 32, "status_p99_us", 100),
		sce("brand-new", 32, "status_p99_us", 9999),
		sce("diurnal", 64, "status_p99_us", 9999), // new fleet size = new key
	}
	report, err := scenarioGuard(base, cand, "status_p99_us", 4.0)
	if err != nil {
		t.Fatalf("new scenarios failed the guard: %v\n%s", err, strings.Join(report, "\n"))
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "brand-new/32") || !strings.Contains(joined, "diurnal/64") ||
		strings.Count(joined, "NEW") != 2 {
		t.Errorf("report = %v", report)
	}
}

func TestLoadScenarios(t *testing.T) {
	p := filepath.Join(t.TempDir(), "sc.json")
	good := `[{"scenario":"diurnal","agents":32,"status_p99_us":120.5,"future_field":"x"}]`
	if err := os.WriteFile(p, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	es, err := loadScenarios(p)
	if err != nil || len(es) != 1 {
		t.Fatalf("es = %v, err = %v", es, err)
	}
	if es[0].key() != "diurnal/32" {
		t.Errorf("key = %q", es[0].key())
	}
	if v, ok := es[0].metric("status_p99_us"); !ok || v != 120.5 {
		t.Errorf("metric = %v, %v", v, ok)
	}
	// Entries without a scenario name are rejected.
	if err := os.WriteFile(p, []byte(`[{"agents":32}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenarios(p); err == nil {
		t.Error("nameless entry accepted")
	}
	if _, err := loadScenarios(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseAgents(t *testing.T) {
	got, err := parseAgents("128, 512")
	if err != nil || len(got) != 2 || got[0] != 128 || got[1] != 512 {
		t.Errorf("got %v, %v", got, err)
	}
	if _, err := parseAgents("128,many"); err == nil {
		t.Error("bad size accepted")
	}
}
