// Command benchguard compares a freshly measured BENCH_fanout.json
// against a committed baseline and fails when any guarded benchmark has
// regressed beyond the allowed ratio. CI runs it after the fan-out
// benchmarks so a control-plane slowdown fails the build instead of
// silently shifting the perf trajectory.
//
//	benchguard -baseline BENCH_baseline.json -candidate BENCH_fanout.json \
//	    -bench CycleFanout -agents 128,512 -max-ratio 2.0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// entry mirrors the benchEntry schema persisted by the repo's fan-out
// benchmarks; unknown fields are ignored.
type entry struct {
	Bench   string  `json:"bench"`
	Agents  int     `json:"agents"`
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
		candidate = flag.String("candidate", "BENCH_fanout.json", "freshly measured results")
		benches   = flag.String("bench", "CycleFanout", "comma-separated benchmark names to guard")
		agents    = flag.String("agents", "128,512", "comma-separated fleet sizes to guard")
		maxRatio  = flag.Float64("max-ratio", 2.0, "fail when candidate ns/op exceeds baseline by this factor")
	)
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := load(*candidate)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := parseAgents(*agents)
	if err != nil {
		log.Fatal(err)
	}
	report, err := guard(base, cand, strings.Split(*benches, ","), sizes, *maxRatio)
	for _, line := range report {
		fmt.Println(line)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func load(path string) ([]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var es []entry
	if err := json.Unmarshal(raw, &es); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return es, nil
}

func parseAgents(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("-agents: %w", err)
		}
		out = append(out, n)
	}
	return out, nil
}

// find returns the entry for a bench/agents pair.
func find(es []entry, bench string, agents int) (entry, bool) {
	for _, e := range es {
		if e.Bench == bench && e.Agents == agents {
			return e, true
		}
	}
	return entry{}, false
}

// guard compares every guarded bench/agents pair and returns the report
// lines plus an error naming the first failure class encountered. A pair
// missing from either file is a failure: a renamed or dropped benchmark
// must update the guard, not silently evade it.
func guard(base, cand []entry, benches []string, agents []int, maxRatio float64) ([]string, error) {
	var report []string
	var regressed, missing []string
	for _, bench := range benches {
		bench = strings.TrimSpace(bench)
		for _, n := range agents {
			name := fmt.Sprintf("%s/n%d", bench, n)
			b, okB := find(base, bench, n)
			c, okC := find(cand, bench, n)
			if !okB || !okC {
				report = append(report, fmt.Sprintf("%-24s MISSING (baseline %v, candidate %v)", name, okB, okC))
				missing = append(missing, name)
				continue
			}
			ratio := c.NsPerOp / b.NsPerOp
			verdict := "ok"
			if ratio > maxRatio {
				verdict = "REGRESSED"
				regressed = append(regressed, name)
			}
			report = append(report, fmt.Sprintf("%-24s %12.0f → %12.0f ns/op  (%.2fx, limit %.2fx)  %s",
				name, b.NsPerOp, c.NsPerOp, ratio, maxRatio, verdict))
		}
	}
	switch {
	case len(missing) > 0:
		return report, fmt.Errorf("missing results: %s", strings.Join(missing, ", "))
	case len(regressed) > 0:
		return report, fmt.Errorf("regressed beyond %.2fx: %s", maxRatio, strings.Join(regressed, ", "))
	}
	return report, nil
}
