// Command benchguard compares freshly measured benchmark results against
// committed baselines and fails when any guarded number has regressed
// beyond the allowed ratio. CI runs it after the measurement steps so a
// control-plane slowdown fails the build instead of silently shifting
// the perf trajectory.
//
// It guards two files. BENCH_fanout.json holds ns/op from the fan-out
// micro-benchmarks, keyed by (bench, agents):
//
//	benchguard -baseline BENCH_baseline.json -candidate BENCH_fanout.json \
//	    -bench CycleFanout -agents 128,512 -max-ratio 2.0
//
// BENCH_scenarios.json holds powbench's per-scenario end-to-end numbers,
// keyed by (scenario, agents); the guarded metric is selectable:
//
//	benchguard -bench '' \
//	    -scenario-baseline BENCH_scenarios_baseline.json \
//	    -scenario-candidate BENCH_scenarios.json \
//	    -scenario-metric status_p99_us -scenario-max-ratio 4.0
//
// Passing -bench '' skips the fan-out guard; leaving -scenario-baseline
// empty skips the scenario guard. A scenario present only in the
// candidate is reported NEW and passes (the next baseline refresh adopts
// it); a baseline scenario missing from the candidate, or a metric key
// absent from either side, is a failure — coverage must never shrink
// silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry mirrors the benchEntry schema persisted by the repo's fan-out
// benchmarks; unknown fields are ignored. AllocsPerOp is zero when the
// file predates allocation tracking — the allocs guard skips such pairs
// rather than failing on an older baseline.
type entry struct {
	Bench       string  `json:"bench"`
	Agents      int     `json:"agents"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
		candidate = flag.String("candidate", "BENCH_fanout.json", "freshly measured results")
		benches   = flag.String("bench", "CycleFanout", "comma-separated benchmark names to guard (empty = skip fan-out guard)")
		agents    = flag.String("agents", "128,512", "comma-separated fleet sizes to guard")
		maxRatio  = flag.Float64("max-ratio", 2.0, "fail when candidate ns/op exceeds baseline by this factor")
		allocsMax = flag.Float64("allocs-max-ratio", 0, "fail when candidate allocs/op exceeds baseline by this factor (0 = skip; pairs without allocs data are skipped)")

		scBaseline  = flag.String("scenario-baseline", "", "committed BENCH_scenarios baseline (empty = skip scenario guard)")
		scCandidate = flag.String("scenario-candidate", "BENCH_scenarios.json", "freshly measured scenario results")
		scMetric    = flag.String("scenario-metric", "status_p99_us", "numeric key guarded per scenario")
		scMaxRatio  = flag.Float64("scenario-max-ratio", 4.0, "fail when the candidate metric exceeds baseline by this factor")
	)
	flag.Parse()

	failed := false
	if *benches != "" {
		base, err := load(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := load(*candidate)
		if err != nil {
			log.Fatal(err)
		}
		sizes, err := parseAgents(*agents)
		if err != nil {
			log.Fatal(err)
		}
		report, err := guard(base, cand, strings.Split(*benches, ","), sizes, *maxRatio, *allocsMax)
		for _, line := range report {
			fmt.Println(line)
		}
		if err != nil {
			log.Print(err)
			failed = true
		}
	}
	if *scBaseline != "" {
		base, err := loadScenarios(*scBaseline)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := loadScenarios(*scCandidate)
		if err != nil {
			log.Fatal(err)
		}
		report, err := scenarioGuard(base, cand, *scMetric, *scMaxRatio)
		for _, line := range report {
			fmt.Println(line)
		}
		if err != nil {
			log.Print(err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) ([]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var es []entry
	if err := json.Unmarshal(raw, &es); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return es, nil
}

func parseAgents(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("-agents: %w", err)
		}
		out = append(out, n)
	}
	return out, nil
}

// find returns the entry for a bench/agents pair.
func find(es []entry, bench string, agents int) (entry, bool) {
	for _, e := range es {
		if e.Bench == bench && e.Agents == agents {
			return e, true
		}
	}
	return entry{}, false
}

// guard compares every guarded bench/agents pair and returns the report
// lines plus an error naming the first failure class encountered. A pair
// missing from either file is a failure: a renamed or dropped benchmark
// must update the guard, not silently evade it. With allocsMax > 0 the
// pair's allocs/op is held to the same treatment, except that a side
// without allocation data (an older baseline, or a GC race reading zero)
// skips the allocs check for that pair instead of failing — ns/op is the
// mandatory metric, allocs/op the opt-in one.
func guard(base, cand []entry, benches []string, agents []int, maxRatio, allocsMax float64) ([]string, error) {
	var report []string
	var regressed, missing []string
	for _, bench := range benches {
		bench = strings.TrimSpace(bench)
		for _, n := range agents {
			name := fmt.Sprintf("%s/n%d", bench, n)
			b, okB := find(base, bench, n)
			c, okC := find(cand, bench, n)
			if !okB || !okC {
				report = append(report, fmt.Sprintf("%-24s MISSING (baseline %v, candidate %v)", name, okB, okC))
				missing = append(missing, name)
				continue
			}
			ratio := c.NsPerOp / b.NsPerOp
			verdict := "ok"
			if ratio > maxRatio {
				verdict = "REGRESSED"
				regressed = append(regressed, name)
			}
			report = append(report, fmt.Sprintf("%-24s %12.0f → %12.0f ns/op  (%.2fx, limit %.2fx)  %s",
				name, b.NsPerOp, c.NsPerOp, ratio, maxRatio, verdict))
			if allocsMax <= 0 {
				continue
			}
			if b.AllocsPerOp <= 0 || c.AllocsPerOp <= 0 {
				report = append(report, fmt.Sprintf("%-24s allocs/op data absent, skipped", name))
				continue
			}
			aRatio := c.AllocsPerOp / b.AllocsPerOp
			aVerdict := "ok"
			if aRatio > allocsMax {
				aVerdict = "REGRESSED"
				regressed = append(regressed, name+" allocs")
			}
			report = append(report, fmt.Sprintf("%-24s %12.1f → %12.1f allocs/op  (%.2fx, limit %.2fx)  %s",
				name, b.AllocsPerOp, c.AllocsPerOp, aRatio, allocsMax, aVerdict))
		}
	}
	switch {
	case len(missing) > 0:
		return report, fmt.Errorf("missing results: %s", strings.Join(missing, ", "))
	case len(regressed) > 0:
		return report, fmt.Errorf("regressed beyond %.2fx: %s", maxRatio, strings.Join(regressed, ", "))
	}
	return report, nil
}

// scenarioEntry is a raw BENCH_scenarios.json record. Entries are kept
// as generic maps so powbench can grow new fields without breaking the
// guard; only scenario, agents and the guarded metric are interpreted.
type scenarioEntry map[string]any

// key identifies a scenario entry the way powbench merges them.
func (e scenarioEntry) key() string {
	name, _ := e["scenario"].(string)
	agents, _ := e["agents"].(float64)
	return fmt.Sprintf("%s/%d", name, int(agents))
}

// metric pulls a numeric field out of the entry.
func (e scenarioEntry) metric(name string) (float64, bool) {
	v, ok := e[name].(float64)
	return v, ok
}

func loadScenarios(path string) ([]scenarioEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var es []scenarioEntry
	if err := json.Unmarshal(raw, &es); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, e := range es {
		if name, _ := e["scenario"].(string); name == "" {
			return nil, fmt.Errorf("%s: entry %d has no scenario name", path, i)
		}
	}
	return es, nil
}

// scenarioGuard holds the line on powbench's end-to-end numbers. Every
// baseline scenario must still be present in the candidate with the
// guarded metric no worse than maxRatio times the baseline value; a
// metric key absent from either side is a failure (a renamed field must
// update the guard, not evade it). Candidate-only scenarios are new
// coverage: reported NEW, never a failure.
func scenarioGuard(base, cand []scenarioEntry, metric string, maxRatio float64) ([]string, error) {
	candByKey := make(map[string]scenarioEntry, len(cand))
	for _, e := range cand {
		candByKey[e.key()] = e
	}
	var report []string
	var regressed, missing []string
	for _, b := range base {
		key := b.key()
		c, ok := candByKey[key]
		delete(candByKey, key)
		if !ok {
			report = append(report, fmt.Sprintf("%-24s MISSING from candidate", key))
			missing = append(missing, key)
			continue
		}
		bv, okB := b.metric(metric)
		cv, okC := c.metric(metric)
		if !okB || !okC {
			report = append(report, fmt.Sprintf("%-24s MISSING metric %q (baseline %v, candidate %v)", key, metric, okB, okC))
			missing = append(missing, key)
			continue
		}
		ratio := cv / bv
		verdict := "ok"
		if ratio > maxRatio {
			verdict = "REGRESSED"
			regressed = append(regressed, key)
		}
		report = append(report, fmt.Sprintf("%-24s %12.0f → %12.0f %s  (%.2fx, limit %.2fx)  %s",
			key, bv, cv, metric, ratio, maxRatio, verdict))
	}
	fresh := make([]string, 0, len(candByKey))
	for key := range candByKey {
		fresh = append(fresh, key)
	}
	sort.Strings(fresh)
	for _, key := range fresh {
		report = append(report, fmt.Sprintf("%-24s NEW (no baseline yet)", key))
	}
	switch {
	case len(missing) > 0:
		return report, fmt.Errorf("scenario guard: missing results: %s", strings.Join(missing, ", "))
	case len(regressed) > 0:
		return report, fmt.Errorf("scenario guard: %s regressed beyond %.2fx: %s", metric, maxRatio, strings.Join(regressed, ", "))
	}
	return report, nil
}
