// Command powctl queries a running powmgrd for its status: connected
// agents, state cycle counts, throttle operations, thresholds and the
// manager's own measured CPU cost.
//
//	powctl -addr 127.0.0.1:7077
//	powctl -addr 127.0.0.1:7077 -json | jq .command_acks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/managerd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powctl: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:7077", "manager daemon address")
		timeout = flag.Duration("timeout", 3*time.Second, "query timeout")
		asJSON  = flag.Bool("json", false, "print the full status reply as one JSON object")
	)
	flag.Parse()

	st, err := managerd.QueryStatus(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("agents          %d\n", st.Agents)
	fmt.Printf("cycles          %d (green %d, yellow %d, red %d)\n",
		st.Cycles, st.GreenCycles, st.YellowCycles, st.RedCycles)
	fmt.Printf("red entries     %d\n", st.RedEntries)
	fmt.Printf("ops             degrade %d, restore %d\n", st.DegradeOps, st.RestoreOps)
	fmt.Printf("last power      %.1f W\n", st.LastPowerW)
	fmt.Printf("thresholds      PL %.1f W, PH %.1f W\n", st.ThresholdPLW, st.ThresholdPHW)
	fmt.Printf("learner         trained %v, lifetime peak %.1f W\n", st.Trained, st.LifetimePeakW)
	fmt.Printf("manager busy    %d µs (cpu utilisation %.4f)\n", st.BusyMicros, st.CPUUtilise)
	fmt.Printf("samples         %d received over the wire\n", st.SamplesReceived)
	fmt.Printf("stale dropped   %d\n", st.DroppedStale)
	fmt.Printf("command errors  %d (stale-conn %d)\n", st.CommandErrors, st.StaleConnErrors)
	fmt.Printf("commands        acks %d, retries %d, reconciles %d, drifted now %d\n",
		st.CommandAcks, st.CommandRetries, st.Reconciles, st.Drifted)
	fmt.Printf("fan-out         coalesced %d (%d shards)\n", st.CoalescedCmds, st.Shards)
	fmt.Printf("cycle latency   last %d µs, max %d µs (fan-out last %d µs, max %d µs)\n",
		st.LastCycleMicros, st.MaxCycleMicros, st.LastFanoutMicros, st.MaxFanoutMicros)
	fmt.Printf("node health     healthy %d, stale %d, lost %d, quarantined %d (quarantines %d)\n",
		st.HealthyNodes, st.StaleNodes, st.LostNodes, st.QuarantinedNodes, st.Quarantines)
	fmt.Printf("journal writes  %d\n", st.JournalWrites)
}
