// Command powctl queries a running powmgrd — or powcoordd — for its
// status. Against a manager it prints connected agents, state cycle
// counts, throttle operations, thresholds and the manager's own measured
// CPU cost; against a coordinator (detected from the reply itself, no
// flag needed) it prints the budget, the fleet roll-up and one line per
// child with its liveness, negotiated codec and granted band.
//
//	powctl -addr 127.0.0.1:7077
//	powctl -addr 127.0.0.1:7070          # a coordinator answers too
//	powctl -addr 127.0.0.1:7077 -json | jq .command_acks
//	powctl -addr 127.0.0.1:7077 -watch 1s -samples 60
//	powctl -addr 127.0.0.1:7077 -codec
//
// -watch polls the manager every interval and renders the recent history
// of the cycle-stage latencies (collection, selection, fan-out, whole
// cycle) and the estimated fleet power as terminal sparklines.
//
// -codec probes wire-codec negotiation: it advertises the full codec set
// a real agent would and reports which codec the daemon picks, plus the
// binary/JSON split across the live fleet's connections.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/fedd"
	"repro/internal/managerd"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powctl: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:7077", "manager daemon address")
		timeout = flag.Duration("timeout", 3*time.Second, "query timeout")
		asJSON  = flag.Bool("json", false, "print the full status reply as one JSON object")
		watch   = flag.Duration("watch", 0, "poll every interval and render latency sparklines (0 = one-shot)")
		samples = flag.Int("samples", 60, "polls per -watch render window; also how many polls before exiting")
		codec   = flag.Bool("codec", false, "probe wire-codec negotiation and report the fleet's binary/JSON split")
	)
	flag.Parse()

	if *codec {
		negotiated, st, err := managerd.QueryCodec(*addr, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("negotiated      %s\n", negotiated)
		fmt.Printf("agent conns     %d binary, %d json (%d agents)\n",
			st.BinaryConns, st.JSONConns, st.Agents)
		return
	}

	if *watch > 0 {
		if err := watchLoop(*addr, *timeout, *watch, *samples); err != nil {
			log.Fatal(err)
		}
		return
	}

	env, err := managerd.QueryStatusEnvelope(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	if env.Node == fedd.CoordinatorNode {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(env); err != nil {
				log.Fatal(err)
			}
			return
		}
		printCoordinator(env)
		return
	}
	st := *env.Stats
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("agents          %d\n", st.Agents)
	fmt.Printf("cycles          %d (green %d, yellow %d, red %d)\n",
		st.Cycles, st.GreenCycles, st.YellowCycles, st.RedCycles)
	fmt.Printf("red entries     %d\n", st.RedEntries)
	fmt.Printf("ops             degrade %d, restore %d\n", st.DegradeOps, st.RestoreOps)
	fmt.Printf("last power      %.1f W\n", st.LastPowerW)
	fmt.Printf("thresholds      PL %.1f W, PH %.1f W\n", st.ThresholdPLW, st.ThresholdPHW)
	fmt.Printf("learner         trained %v, lifetime peak %.1f W\n", st.Trained, st.LifetimePeakW)
	fmt.Printf("manager busy    %d µs (cpu utilisation %.4f)\n", st.BusyMicros, st.CPUUtilise)
	fmt.Printf("select time     %d µs accumulated\n", st.SelectMicros)
	fmt.Printf("collection      last %d µs, %d µs accumulated\n", st.LastCollectMicros, st.CollectMicros)
	fmt.Printf("samples         %d received over the wire\n", st.SamplesReceived)
	fmt.Printf("stale dropped   %d\n", st.DroppedStale)
	fmt.Printf("command errors  %d (stale-conn %d)\n", st.CommandErrors, st.StaleConnErrors)
	fmt.Printf("commands        acks %d, retries %d, reconciles %d, drifted now %d\n",
		st.CommandAcks, st.CommandRetries, st.Reconciles, st.Drifted)
	fmt.Printf("fan-out         coalesced %d (%d shards)\n", st.CoalescedCmds, st.Shards)
	fmt.Printf("cycle latency   last %d µs, max %d µs (fan-out last %d µs, max %d µs)\n",
		st.LastCycleMicros, st.MaxCycleMicros, st.LastFanoutMicros, st.MaxFanoutMicros)
	fmt.Printf("node health     healthy %d, stale %d, lost %d, quarantined %d (quarantines %d)\n",
		st.HealthyNodes, st.StaleNodes, st.LostNodes, st.QuarantinedNodes, st.Quarantines)
	fmt.Printf("journal writes  %d (incremental appends %d)\n", st.JournalWrites, st.JournalAppends)
	if st.Governed || st.BudgetFloors > 0 {
		fmt.Printf("federation      cabinet %d, governed %v, grants %d, floors %d, demand %.1f W\n",
			st.Cabinet, st.Governed, st.BudgetGrants, st.BudgetFloors, st.DemandW)
	}
	if st.Epoch > 0 {
		fmt.Printf("ha              epoch %d, leader %v, followers %d (lag %d entries), fenced hellos %d\n",
			st.Epoch, st.Leader, st.ReplicaConns, st.ReplicaLagEntries, st.FencedHellos)
		if st.LastTakeoverMicros > 0 {
			fmt.Printf("last takeover   %s leaderless absorbed\n",
				time.Duration(st.LastTakeoverMicros)*time.Microsecond)
		}
	}
}

// printCoordinator renders a coordinator's status: the aggregate block,
// then one line per known child with its liveness, negotiated codec and
// granted band. "Child" is a cabinet manager under a row or root
// coordinator, or a whole row under a facility.
func printCoordinator(env wire.Envelope) {
	st := *env.Stats
	fmt.Printf("coordinator     row %d, governed %v\n", st.Cabinet, st.Governed)
	fmt.Printf("budget          PL %.1f W, PH %.1f W\n", st.ThresholdPLW, st.ThresholdPHW)
	fmt.Printf("fleet           power %.1f W, demand %.1f W, agents %d (healthy %d)\n",
		st.LastPowerW, st.DemandW, st.Agents, st.HealthyNodes)
	fmt.Printf("cycles          %d (last %d µs)\n", st.Cycles, st.LastCycleMicros)
	fmt.Printf("children        %d known, %d lost (%d binary, %d json)\n",
		len(env.Batch), st.LostNodes, st.BinaryConns, st.JSONConns)
	fmt.Printf("federation      grants received %d, floors %d, decode errors %d\n",
		st.BudgetGrants, st.BudgetFloors, st.DecodeErrors)
	if st.Epoch > 0 {
		fmt.Printf("ha              epoch %d, leader %v, followers %d (lag %d entries), fenced hellos %d\n",
			st.Epoch, st.Leader, st.ReplicaConns, st.ReplicaLagEntries, st.FencedHellos)
		if st.LastTakeoverMicros > 0 {
			fmt.Printf("last takeover   %s leaderless absorbed\n",
				time.Duration(st.LastTakeoverMicros)*time.Microsecond)
		}
	}
	for _, c := range env.Batch {
		live := "live"
		if c.Level == 0 {
			live = "lost"
		}
		codec := c.Codec
		if codec == "" {
			codec = "-"
		}
		fmt.Printf("child %-3d       %s codec %-6s grant %.0f W (PH %.0f W, seq %d) power %.0f W demand %.0f W agents %d/%d epoch %d\n",
			c.Node, live, codec, c.BudgetW, c.PHW, c.Seq, c.PowerW, c.DemandW,
			c.Healthy, c.Agents, c.Epoch)
	}
}

// sparkWidth is the character width of the -watch sparklines.
const sparkWidth = 40

// track is one watched quantity: a status-reply projection accumulated
// into a series, rendered as a sparkline with a min/max scale.
type track struct {
	name string
	unit string
	get  func(st wire.StatusReply) float64
	s    *metrics.Series
}

// watchLoop polls the manager n times, every interval, printing after
// each poll a block of sparklines over the history gathered so far. The
// fixed poll count makes the command a bounded observation window rather
// than an open-ended UI — run it again for a fresh window.
func watchLoop(addr string, timeout, every time.Duration, n int) error {
	if n <= 0 {
		n = 60
	}
	var prevSelect int64
	tracks := []*track{
		{name: "power", unit: "W", get: func(st wire.StatusReply) float64 { return st.LastPowerW }},
		{name: "cycle", unit: "µs", get: func(st wire.StatusReply) float64 { return float64(st.LastCycleMicros) }},
		{name: "collect", unit: "µs", get: func(st wire.StatusReply) float64 { return float64(st.LastCollectMicros) }},
		{name: "fan-out", unit: "µs", get: func(st wire.StatusReply) float64 { return float64(st.LastFanoutMicros) }},
		// Selection time is accumulated by the manager; the per-poll delta
		// is what tracks the current policy cost.
		{name: "select Δ", unit: "µs", get: func(st wire.StatusReply) float64 { return float64(st.SelectMicros - prevSelect) }},
	}
	for _, tr := range tracks {
		tr.s = &metrics.Series{}
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			time.Sleep(every)
		}
		st, err := managerd.QueryStatus(addr, timeout)
		if err != nil {
			return err
		}
		at := time.Duration(i) * every
		for _, tr := range tracks {
			if err := tr.s.Add(at, units.Watts(tr.get(st))); err != nil {
				return err
			}
		}
		prevSelect = st.SelectMicros

		fmt.Printf("poll %d/%d  cycles %d (g/y/r %d/%d/%d)  agents %d\n",
			i+1, n, st.Cycles, st.GreenCycles, st.YellowCycles, st.RedCycles, st.Agents)
		for _, tr := range tracks {
			lo, hi := seriesMinMax(tr.s)
			spark := trace.Sparkline(tr.s, sparkWidth)
			if spark == "" {
				spark = "(gathering)"
			}
			fmt.Printf("  %-9s %12.1f %s %.1f %s\n", tr.name, lo, spark, hi, tr.unit)
		}
	}
	return nil
}

// seriesMinMax scans a series' raw values.
func seriesMinMax(s *metrics.Series) (lo, hi float64) {
	for i := 0; i < s.Len(); i++ {
		_, p := s.At(i)
		v := float64(p)
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	return lo, hi
}
