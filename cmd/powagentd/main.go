// Command powagentd runs one per-node profiling agent: it drives a
// simulated Tianhe node under a synthetic load pattern in real time,
// samples its kernel counters every sampling interval, pushes the readings
// to powmgrd, and applies the power level commands sent back.
//
//	powagentd -manager 127.0.0.1:7077 -node 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/agentd"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/power"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powagentd: ")

	var (
		manager = flag.String("manager", "127.0.0.1:7077", "manager daemon address, or a comma-separated list rotated through on reconnect (primary,standby)")
		id      = flag.Int("node", 0, "node identity")
		sample  = flag.Duration("sample", time.Second, "sampling/push interval τ")
		tick    = flag.Duration("tick", 100*time.Millisecond, "simulated node tick")
		seed    = flag.Int64("seed", 0, "synthetic load seed (0 = node id)")

		failsafeAfter = flag.Int("failsafe-after", 0, "dead-man switch: silent sample periods before self-degrading (0 = disabled)")
		failsafeLevel = flag.Int("failsafe-level", 0, "dead-man switch floor level")

		initialBackoff = flag.Duration("initial-backoff", 200*time.Millisecond, "reconnect backoff floor")
		maxBackoff     = flag.Duration("max-backoff", 10*time.Second, "reconnect backoff ceiling")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics on this address (empty = disabled)")

		codec = flag.String("codec", "binary", "wire codec advertised to the manager: binary or json")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = int64(*id) + 1
	}

	var addrs []string
	for _, m := range strings.Split(*manager, ",") {
		if m = strings.TrimSpace(m); m != "" {
			addrs = append(addrs, m)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-manager must name at least one address")
	}

	a, err := agentd.New(agentd.Config{
		NodeID:        node.ID(*id),
		ManagerAddr:   addrs[0],
		ManagerAddrs:  addrs,
		SampleEvery:   *sample,
		TickEvery:     *tick,
		Model:         power.TianheNode(),
		Seed:          *seed,
		FailsafeAfter: *failsafeAfter,
		FailsafeLevel: *failsafeLevel,
		Codec:         *codec,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() { <-sig; cancel() }()

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		msrv := &http.Server{Handler: obs.NewMux(a.Registry(), nil, nil)}
		go func() { _ = msrv.Serve(ln) }()
		defer msrv.Close()
		fmt.Printf("powagentd: metrics on http://%s/metrics\n", ln.Addr())
	}

	fmt.Printf("powagentd: node %d → %s (τ %v)\n", *id, *manager, *sample)
	// Reconnect with backoff: a manager restart must not take the fleet
	// of agents down with it.
	a.RunWithReconnect(ctx, *initialBackoff, *maxBackoff)
	fmt.Printf("powagentd: node %d stopped after %d applied commands (level %d, failsafe trips %d)\n",
		*id, a.CommandsApplied(), a.Level(), a.FailsafeTrips())
}
