// Command powersim runs one power-capping scenario on the simulated
// Tianhe-1A cluster and prints the paper's metrics, optionally exporting
// the power time-series and job records.
//
// Usage:
//
//	powersim -policy mpc -training 2h -eval 6h
//	powersim -policy hri -candidates 48 -seed 3 -series series.csv -jobs jobs.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powersim: ")

	var (
		backendName = flag.String("backend", "sim", "cluster backend: sim (in-process) or daemon (managerd/agentd over the wire)")

		policy     = flag.String("policy", "mpc", "target set selection policy (mpc, mpc-c, lpc, lpc-c, bfp, hri, hri-c, none, all, random)")
		nodes      = flag.Int("nodes", 128, "total nodes |A_total|")
		privileged = flag.Int("privileged", 0, "permanently uncontrollable nodes")
		candidates = flag.Int("candidates", -1, "|A_candidate| (-1 = all non-privileged)")
		class      = flag.String("class", "D", "NPB problem class (C or D)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		training   = flag.Duration("training", 2*time.Hour, "uncapped threshold-learning period (0 = manual thresholds from -pmax)")
		eval       = flag.Duration("eval", 6*time.Hour, "evaluation window")
		pmax       = flag.String("pmax", "31kW", "power provision capability")
		tg         = flag.Int("tg", 10, "steady-green patience T_g (control cycles)")
		period     = flag.Duration("period", time.Second, "control cycle period τ")
		dropRate   = flag.Float64("drop", 0, "agent sample loss probability per cycle")
		seriesOut  = flag.String("series", "", "write power series CSV to this file")
		jobsOut    = flag.String("jobs", "", "write finished-job CSV to this file")
		eventsOut  = flag.String("events", "", "write control-loop state transitions (JSONL) to this file")
		recordOut  = flag.String("record-trace", "", "record the generated workload trace to this file")
		replayIn   = flag.String("replay-trace", "", "replay a previously recorded workload trace")
	)
	flag.Parse()

	pm, err := units.ParseWatts(*pmax)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Backend = *backendName
	cfg.Seed = *seed
	cfg.Nodes = *nodes
	cfg.Privileged = *privileged
	cfg.CandidateCount = *candidates
	cfg.PolicyName = *policy
	cfg.PMax = pm
	cfg.Training = *training
	cfg.Tg = *tg
	cfg.ControlPeriod = *period
	cfg.AgentDropRate = *dropRate
	cfg.RecordTrace = *recordOut != ""
	if *replayIn != "" {
		f, err := os.Open(*replayIn)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := replay.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.WorkloadTrace = tr
		fmt.Printf("replaying %d-job trace from %s\n", tr.Len(), *replayIn)
	}
	switch *class {
	case "C", "c":
		cfg.Class = workload.ClassC
	case "D", "d":
		cfg.Class = workload.ClassD
	default:
		log.Fatalf("unknown class %q (want C or D)", *class)
	}

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("cluster: %d nodes, P_thy %v, provision %v\n",
		cfg.Nodes, sys.Traits().TheoreticalPeak, pm)
	fmt.Println("assumptions (§II.D):")
	fmt.Println(core.FormatAssumptions(sys.CheckAssumptions()))
	fmt.Printf("running: backend=%s policy=%s class=%c training=%v eval=%v seed=%d\n",
		cfg.Backend, *policy, cfg.Class, *training, *eval, *seed)

	start := time.Now()
	res, err := sys.Run(*eval)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	st := res.ManagerStats
	fmt.Printf("\nresults (%v wall):\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  P_max         %v\n", s.PMax)
	fmt.Printf("  P_mean        %v\n", s.PMean)
	fmt.Printf("  distribution  %v\n", metrics.NewHistogram(res.Series))
	if spark := trace.SparklineWithScale(res.Series, 60); spark != "" {
		fmt.Printf("  timeline      %s\n", spark)
	}
	fmt.Printf("  energy        %.2f kWh\n", s.Energy.KWh())
	fmt.Printf("  ΔP×T          %.5f (threshold %v)\n", s.Overspend, pm)
	fmt.Printf("  time over     %v\n", s.TimeAbove.Round(time.Second))
	fmt.Printf("  performance   %.4f\n", s.Performance)
	fmt.Printf("  CPLJ          %d/%d (%.1f%%)\n", s.CPLJ, s.JobsDone, 100*s.CPLJFrac)
	fmt.Printf("  thresholds    PL=%v PH=%v (peak %v)\n", res.Thresholds.PL, res.Thresholds.PH, res.TrainingPeak)
	fmt.Printf("  cycles        green=%d yellow=%d red=%d (red entries %d)\n",
		st.GreenCycles, st.YellowCycles, st.RedCycles, st.RedEntries)
	fmt.Printf("  ops           degrade=%d restore=%d\n", st.DegradeOps, st.RestoreOps)
	if res.DroppedReadings > 0 {
		fmt.Printf("  faults        %d readings dropped\n", res.DroppedReadings)
	}
	if d, ok := sys.Backend().(*backend.Daemon); ok {
		dst := d.Status()
		fmt.Printf("  transport     samples=%d acks=%d retries=%d reconciles=%d\n",
			dst.SamplesReceived, dst.CommandAcks, dst.CommandRetries, dst.Reconciles)
	}

	if *seriesOut != "" {
		if err := writeFile(*seriesOut, func(f *os.File) error {
			return trace.WriteSeriesCSV(f, res.Series)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d samples)\n", *seriesOut, res.Series.Len())
	}
	if *eventsOut != "" && res.Events != nil {
		if err := writeFile(*eventsOut, func(f *os.File) error {
			return res.Events.WriteJSONL(f)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events)\n", *eventsOut, res.Events.Len())
	}
	if *recordOut != "" && res.Trace != nil {
		if err := writeFile(*recordOut, func(f *os.File) error {
			return res.Trace.Write(f)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d requests)\n", *recordOut, res.Trace.Len())
	}
	if *jobsOut != "" {
		if err := writeFile(*jobsOut, func(f *os.File) error {
			return trace.WriteJobsCSV(f, res.Jobs, metrics.DefaultLosslessTol)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d jobs)\n", *jobsOut, len(res.Jobs))
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
