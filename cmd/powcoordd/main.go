// Command powcoordd runs the federation coordinator: it owns the global
// power budget and re-divides it across cabinet managers (powmgrd
// instances started with -coordinator) every coordination cycle.
//
//	powcoordd -addr 127.0.0.1:7070 -budget 120kW -ph 132kW \
//	          -division fair -breaker 40kW -floor 2kW
//
// Each cabinet manager subscribes and streams aggregate reports; the
// coordinator answers with budget grants, which double as heartbeats —
// a cabinet cut off from the coordinator floors itself to its failsafe
// band, and its budget share is re-divided among the survivors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/budget"
	"repro/internal/fedd"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powcoordd: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address for cabinet subscriptions")
		budgetStr  = flag.String("budget", "120kW", "global budget (sum of all grants' P_L)")
		phStr      = flag.String("ph", "", "global upper threshold P_H (default 1.1× budget)")
		divName    = flag.String("division", "proportional", "budget division: uniform, proportional or fair")
		period     = flag.Duration("period", time.Second, "coordination cycle period")
		staleAfter = flag.Duration("stale-after", 0, "mark cabinets lost after this report silence (0 = 3 cycles)")
		breakerStr = flag.String("breaker", "", "per-cabinet breaker rating capping any grant (empty = unbounded)")
		floorStr   = flag.String("floor", "", "per-cabinet weighting floor, reserved for lost cabinets (empty = none)")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics and GET /debug/cycles on this address (empty = disabled)")
		codec       = flag.String("codec", "binary", "preferred wire codec negotiated with cabinets: binary or json")
	)
	flag.Parse()

	bud, err := units.ParseWatts(*budgetStr)
	if err != nil {
		log.Fatal(err)
	}
	ph := bud * 11 / 10
	if *phStr != "" {
		if ph, err = units.ParseWatts(*phStr); err != nil {
			log.Fatal(err)
		}
	}
	div, err := budget.ParseDivision(*divName)
	if err != nil {
		log.Fatal(err)
	}
	var breaker, floor units.Watts
	if *breakerStr != "" {
		if breaker, err = units.ParseWatts(*breakerStr); err != nil {
			log.Fatal(err)
		}
	}
	if *floorStr != "" {
		if floor, err = units.ParseWatts(*floorStr); err != nil {
			log.Fatal(err)
		}
	}

	srv, err := fedd.New(fedd.Config{
		Addr:         *addr,
		Budget:       bud,
		PH:           ph,
		Division:     div,
		ControlEvery: *period,
		StaleAfter:   *staleAfter,
		Breaker:      breaker,
		FloorW:       floor,
		WireCodec:    *codec,
		MetricsAddr:  *metricsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("powcoordd: listening on %s (budget %v, PH %v, division %s, period %v)\n",
		srv.Addr(), bud, ph, div, *period)
	if ma := srv.MetricsAddr(); ma != "" {
		fmt.Printf("powcoordd: metrics on http://%s/metrics (cycles on /debug/cycles)\n", ma)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("powcoordd: shutting down")
	srv.Stop()
	for _, cs := range srv.CabinetStates() {
		fmt.Printf("powcoordd: cabinet %d live=%v grant %.0fW applied %.0fW power %.0fW agents %d/%d\n",
			cs.Cabinet, cs.Live, cs.GrantW, cs.AppliedW, cs.PowerW, cs.Healthy, cs.Agents)
	}
}
