// Command powcoordd runs a coordinator tier of the capping federation:
// it owns a power budget and re-divides it across its children — cabinet
// managers (powmgrd instances started with -coordinator) or further
// powcoordd instances in a deeper tree — every coordination cycle.
//
//	powcoordd -addr 127.0.0.1:7070 -budget 120kW -ph 132kW \
//	          -division fair -breaker 40kW -floor 2kW
//
// Each child subscribes and streams aggregate reports; the coordinator
// answers with budget grants, which double as heartbeats — a child cut
// off from the coordinator floors itself to its failsafe band, and its
// budget share is re-divided among the survivors.
//
// With -parent the daemon runs as a row coordinator: it reports its
// fleet roll-up upward to a facility powcoordd under child index -row
// and divides whatever band it is granted (falling back to
// -failsafe-pl/-failsafe-ph after -budget-grace cycles of parent
// silence), so a facility → row → cabinet tree is three powcoordd/powmgrd
// layers speaking one protocol:
//
//	powcoordd -addr :7060 -budget 240kW                 # facility
//	powcoordd -addr :7070 -parent 127.0.0.1:7060 -row 0 # row 0
//	powmgrd   -addr :7077 -coordinator 127.0.0.1:7070   # a cabinet
//
// With -lease the coordinator renews a leadership lease file and
// journals every grant through -journal; a second powcoordd started with
// -standby-of replicates that journal over the wire and promotes itself
// at a higher epoch once the lease goes stale past -lease-miss-budget
// renewals, seeding its grantor from the replicated grants so no cabinet
// floors across the takeover:
//
//	powcoordd -addr :7070 -journal primary.journal -lease /shared/lease.json
//	powcoordd -addr :7071 -journal standby.journal -lease /shared/lease.json \
//	          -standby-of 127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/budget"
	"repro/internal/fedd"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powcoordd: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address for child subscriptions")
		budgetStr  = flag.String("budget", "120kW", "global budget (sum of all grants' P_L)")
		phStr      = flag.String("ph", "", "global upper threshold P_H (default 1.1× budget)")
		divName    = flag.String("division", "proportional", "budget division: uniform, proportional or fair")
		period     = flag.Duration("period", time.Second, "coordination cycle period")
		staleAfter = flag.Duration("stale-after", 0, "mark children lost after this report silence (0 = 3 cycles)")
		breakerStr = flag.String("breaker", "", "per-child breaker rating capping any grant (empty = unbounded)")
		floorStr   = flag.String("floor", "", "per-child weighting floor, reserved for lost children (empty = none)")

		parent      = flag.String("parent", "", "facility coordinator address: run as a row coordinator under it (empty = root)")
		row         = flag.Int("row", 0, "this row's child index under -parent")
		reportEvery = flag.Duration("report-every", 0, "upward reporting period in row mode (0 = -period)")
		budgetGrace = flag.Int("budget-grace", 0, "parent-silent cycles tolerated before flooring to the failsafe band (0 = 3)")
		failsafePL  = flag.String("failsafe-pl", "", "failsafe band P_L divided while the parent is silent (empty = -budget)")
		failsafePH  = flag.String("failsafe-ph", "", "failsafe band P_H (empty = -ph)")

		journalPath = flag.String("journal", "", "grant journal path for restart recovery and standby replication (empty = memory only)")
		leasePath   = flag.String("lease", "", "leadership lease file shared with standbys (empty = HA off)")
		leaseEvery  = flag.Duration("lease-every", 250*time.Millisecond, "lease renewal period")
		standbyOf   = flag.String("standby-of", "", "run as warm standby: replicate this coordinator's journal, promote when its lease goes stale")
		missBudget  = flag.Int("lease-miss-budget", 4, "stale lease renewals a standby tolerates before declaring the leader dead")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics and GET /debug/cycles on this address (empty = disabled)")
		codec       = flag.String("codec", "binary", "preferred wire codec negotiated with children: binary or json")
	)
	flag.Parse()

	bud, err := units.ParseWatts(*budgetStr)
	if err != nil {
		log.Fatal(err)
	}
	ph := bud * 11 / 10
	if *phStr != "" {
		if ph, err = units.ParseWatts(*phStr); err != nil {
			log.Fatal(err)
		}
	}
	div, err := budget.ParseDivision(*divName)
	if err != nil {
		log.Fatal(err)
	}
	var breaker, floor units.Watts
	if *breakerStr != "" {
		if breaker, err = units.ParseWatts(*breakerStr); err != nil {
			log.Fatal(err)
		}
	}
	if *floorStr != "" {
		if floor, err = units.ParseWatts(*floorStr); err != nil {
			log.Fatal(err)
		}
	}
	var failsafe power.Thresholds
	if *failsafePL != "" {
		if failsafe.PL, err = units.ParseWatts(*failsafePL); err != nil {
			log.Fatal(err)
		}
		failsafe.PH = failsafe.PL * 11 / 10
	}
	if *failsafePH != "" {
		if failsafe.PH, err = units.ParseWatts(*failsafePH); err != nil {
			log.Fatal(err)
		}
	}

	cfg := fedd.Config{
		Addr:         *addr,
		Budget:       bud,
		PH:           ph,
		Division:     div,
		ControlEvery: *period,
		StaleAfter:   *staleAfter,
		Breaker:      breaker,
		FloorW:       floor,
		WireCodec:    *codec,
		MetricsAddr:  *metricsAddr,

		ParentAddr:     *parent,
		Row:            *row,
		ReportEvery:    *reportEvery,
		BudgetGrace:    *budgetGrace,
		FailsafeBudget: failsafe,

		JournalPath: *journalPath,
	}

	var lease *replica.Lease
	if *leasePath != "" {
		lease = &replica.Lease{Path: *leasePath, Every: *leaseEvery}
	}
	if *standbyOf != "" {
		if lease == nil {
			log.Fatal("-standby-of requires -lease (the standby watches the leader's lease file)")
		}
		runStandby(cfg, lease, *standbyOf, *journalPath, *missBudget)
		return
	}
	if lease != nil {
		cfg.Lease = lease
		cfg.LeaseHolder = "primary"
	}

	srv, err := fedd.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("powcoordd: listening on %s (budget %v, PH %v, division %s, period %v)\n",
		srv.Addr(), bud, ph, div, *period)
	if *parent != "" {
		fmt.Printf("powcoordd: row %d under facility %s\n", *row, *parent)
	}
	if ma := srv.MetricsAddr(); ma != "" {
		fmt.Printf("powcoordd: metrics on http://%s/metrics (cycles on /debug/cycles)\n", ma)
	}

	awaitSignal()
	fmt.Println("powcoordd: shutting down")
	srv.Stop()
	printSummary(srv)
}

// runStandby replicates the leader's grant journal into the -journal
// path (or memory when empty), watches its lease, and on takeover boots
// the full coordinator from the replicated copy at the claimed epoch.
func runStandby(cfg fedd.Config, lease *replica.Lease, leader, journalPath string, missBudget int) {
	store, err := replica.Open(journalPath)
	if err != nil {
		log.Fatal(err)
	}
	var (
		mu       sync.Mutex
		promoted *fedd.Server
	)
	sb, err := replica.NewStandby(replica.StandbyConfig{
		Follower:   replica.FollowerConfig{Addr: leader, Store: store, Backoff: lease.Period()},
		Lease:      lease,
		MissBudget: missBudget,
		Holder:     "standby",
		OnPromote: func(p replica.Promotion) error {
			cfg.JournalPath = ""
			cfg.Journal = p.Store
			cfg.Epoch = p.Epoch
			cfg.Lease = lease
			cfg.LeaseHolder = "standby"
			cfg.TakeoverMicros = p.Leaderless.Microseconds()
			srv, err := fedd.New(cfg)
			if err != nil {
				return err
			}
			if err := srv.Start(); err != nil {
				return err
			}
			mu.Lock()
			promoted = srv
			mu.Unlock()
			fmt.Printf("powcoordd: promoted at epoch %d after %v leaderless, listening on %s\n",
				p.Epoch, p.Leaderless.Round(time.Millisecond), srv.Addr())
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := sb.Run(ctx); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("powcoordd: standby of %s (lease %s every %v, miss budget %d)\n",
		leader, lease.Path, lease.Period(), missBudget)

	awaitSignal()
	fmt.Println("powcoordd: shutting down")
	cancel()
	<-done
	mu.Lock()
	srv := promoted
	mu.Unlock()
	if srv != nil {
		srv.Stop()
		printSummary(srv)
	}
}

func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
}

func printSummary(srv *fedd.Server) {
	for _, cs := range srv.CabinetStates() {
		fmt.Printf("powcoordd: child %d live=%v grant %.0fW applied %.0fW power %.0fW agents %d/%d\n",
			cs.Cabinet, cs.Live, cs.GrantW, cs.AppliedW, cs.PowerW, cs.Healthy, cs.Agents)
	}
}
