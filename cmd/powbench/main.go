// Command powbench is the open-loop scenario driver: it replays the
// seeded scenario library (internal/scenario) as synthetic agent fleets
// over the real wire protocol against a live powmgrd, measuring what the
// cap and its operators experience — sample send lag against the
// open-loop schedule, status round-trip latency under load, peak power,
// worst control-cycle time — and persists per-scenario results to
// BENCH_scenarios.json for benchguard to hold the line on.
//
// By default each scenario gets a fresh embedded manager daemon on a
// loopback TCP port, with thresholds derived from the scenario (so every
// scenario engages its cap the way it was scripted to). Point -addr at
// an already-running powmgrd to drive that instead; its configured
// thresholds then apply.
//
// Examples:
//
//	powbench                                   # all scenarios, embedded daemon
//	powbench -scenarios flash-crowd,diurnal    # a subset
//	powbench -connections 64 -cycles 300       # scale the fleet and script
//	powbench -addr 127.0.0.1:7077              # drive an external powmgrd
//	powbench -list                             # show the library
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/managerd"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/scenario"
)

// benchModel is the fleet's power profile model — the same testbed node
// the daemons and scenarios use.
var benchModel = power.TianheNode()

func main() {
	var (
		scenarios   = flag.String("scenarios", "all", "comma-separated scenario names, or \"all\"")
		seed        = flag.Int64("seed", 1, "scenario script seed")
		addr        = flag.String("addr", "", "drive this running powmgrd (empty = embedded daemon per scenario)")
		connections = flag.Int("connections", 0, "agent connections per scenario (0 = scenario default)")
		cycles      = flag.Int("cycles", 0, "script length in cycles (0 = scenario default)")
		duration    = flag.Duration("duration", 0, "wall-clock cap per scenario (0 = run the full script)")
		workers     = flag.Int("workers", 8, "sender goroutines the fleet is partitioned across")
		pipeline    = flag.Int("pipeline", 1, "burst depth: cycles' samples written back-to-back per wakeup")
		sampleEvery = flag.Duration("sample-every", 25*time.Millisecond, "open-loop sample period per agent")
		statusEvery = flag.Duration("status-every", 100*time.Millisecond, "status probe period")
		ctrlEvery   = flag.Duration("control-every", 25*time.Millisecond, "embedded daemon control period")
		out         = flag.String("out", "BENCH_scenarios.json", "merge results into this JSON file (empty = don't persist)")
		list        = flag.Bool("list", false, "list the scenario library and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenario.All() {
			fmt.Printf("%-18s %3d agents × %3d cycles  policy=%-6s  %s\n",
				sc.Name, sc.Agents, sc.Cycles, sc.Policy, sc.About)
		}
		return
	}

	picked, err := pickScenarios(*scenarios)
	if err != nil {
		fatal(err)
	}

	var entries []scenarioEntry
	for _, sc := range picked {
		sc = sc.Scaled(*connections, *cycles)
		runAddr := *addr
		var stop func()
		if runAddr == "" {
			if sc.FailoverFrac > 0 {
				runAddr, stop, err = spawnFailoverDaemon(sc, *ctrlEvery, *sampleEvery)
			} else {
				runAddr, stop, err = spawnDaemon(sc, *ctrlEvery)
			}
			if err != nil {
				fatal(fmt.Errorf("%s: spawn daemon: %w", sc.Name, err))
			}
		}
		fmt.Printf("▶ %-18s %3d agents × %3d cycles @ %v (pipeline %d) → %s\n",
			sc.Name, sc.Agents, sc.Cycles, *sampleEvery, *pipeline, runAddr)
		entry, err := runScenario(engineConfig{
			Addr: runAddr, SC: sc, Seed: *seed,
			Workers: *workers, Pipeline: *pipeline,
			SampleEvery: *sampleEvery, StatusEvery: *statusEvery,
			Duration: *duration,
		})
		if stop != nil {
			stop()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sc.Name, err))
		}
		printEntry(entry)
		entries = append(entries, entry)
	}

	if *out != "" && len(entries) > 0 {
		if err := mergeEntries(*out, entries); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(entries))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powbench:", err)
	os.Exit(1)
}

// pickScenarios resolves the -scenarios flag against the library.
func pickScenarios(names string) ([]scenario.Scenario, error) {
	if names == "all" || names == "" {
		return scenario.All(), nil
	}
	var out []scenario.Scenario
	for _, name := range strings.Split(names, ",") {
		sc, err := scenario.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// spawnDaemon boots an embedded manager daemon on a loopback port with
// the scenario's own policy, patience and thresholds — a live powmgrd in
// all but process boundary.
func spawnDaemon(sc scenario.Scenario, ctrlEvery time.Duration) (string, func(), error) {
	pol, err := policy.New(sc.Policy, rand.New(rand.NewSource(1)))
	if err != nil {
		return "", nil, err
	}
	srv, err := managerd.New(managerd.Config{
		Addr:           "127.0.0.1:0",
		Model:          benchModel,
		Policy:         pol,
		Tg:             sc.Tg,
		ControlEvery:   ctrlEvery,
		Thresholds:     sc.Thresholds(benchModel),
		CommandTimeout: 2 * time.Second,
		FlapLimit:      -1, // reconnect herds are the point, not a fault
	})
	if err != nil {
		return "", nil, err
	}
	if err := srv.Start(); err != nil {
		return "", nil, err
	}
	return srv.Addr(), srv.Stop, nil
}

// spawnFailoverDaemon boots the HA pair a failover scenario scripts: a
// leased primary plus a warm standby replicating its journal over TCP. A
// timer kills the primary at the scripted failover cycle; the standby
// declares death via the stale lease, and the promoted manager rebinds
// the primary's TCP address so the fleet's open-loop redials land on the
// new leader without the driver knowing anything changed.
func spawnFailoverDaemon(sc scenario.Scenario, ctrlEvery, sampleEvery time.Duration) (string, func(), error) {
	pol, err := policy.New(sc.Policy, rand.New(rand.NewSource(1)))
	if err != nil {
		return "", nil, err
	}
	dir, err := os.MkdirTemp("", "powbench-ha-")
	if err != nil {
		return "", nil, err
	}
	lease := &replica.Lease{Path: filepath.Join(dir, "lease.json"), Every: 10 * time.Millisecond}
	base := managerd.Config{
		Model:          benchModel,
		Policy:         pol,
		Tg:             sc.Tg,
		ControlEvery:   ctrlEvery,
		Thresholds:     sc.Thresholds(benchModel),
		CommandTimeout: 2 * time.Second,
		FlapLimit:      -1,
		Lease:          lease,
	}

	pcfg := base
	pcfg.Addr = "127.0.0.1:0"
	pcfg.Epoch = 1
	pcfg.LeaseHolder = "primary"
	primary, err := managerd.New(pcfg)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	if err := primary.Start(); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	addr := primary.Addr()

	store, err := replica.Open("")
	if err != nil {
		primary.Stop()
		os.RemoveAll(dir)
		return "", nil, err
	}
	var promoted struct {
		mu  sync.Mutex
		srv *managerd.Server
	}
	sb, err := replica.NewStandby(replica.StandbyConfig{
		Follower:   replica.FollowerConfig{Addr: addr, Store: store, Backoff: 10 * time.Millisecond},
		Lease:      lease,
		MissBudget: 5,
		Holder:     "standby",
		OnPromote: func(p replica.Promotion) error {
			// The dead primary's port frees as its listener closes; retry
			// the exact address so the fleet's redials need no new config.
			var ln net.Listener
			deadline := time.Now().Add(5 * time.Second)
			for {
				if ln, err = net.Listen("tcp", addr); err == nil {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("rebind %s: %w", addr, err)
				}
				time.Sleep(5 * time.Millisecond)
			}
			cfg := base
			cfg.Listener = ln
			cfg.Journal = p.Store
			cfg.Epoch = p.Epoch
			cfg.LeaseHolder = "standby"
			cfg.TakeoverMicros = p.Leaderless.Microseconds()
			srv, err := managerd.New(cfg)
			if err != nil {
				ln.Close()
				return err
			}
			if err := srv.Start(); err != nil {
				return err
			}
			promoted.mu.Lock()
			promoted.srv = srv
			promoted.mu.Unlock()
			fmt.Printf("  ⇄ failover: standby promoted at epoch %d (leaderless %v)\n",
				p.Epoch, p.Leaderless.Round(time.Millisecond))
			return nil
		},
	})
	if err != nil {
		primary.Stop()
		os.RemoveAll(dir)
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = sb.Run(ctx)
	}()
	killAfter := time.Duration(sc.FailoverFrac * float64(sc.Cycles) * float64(sampleEvery))
	killer := time.AfterFunc(killAfter, primary.Stop)

	stop := func() {
		killer.Stop()
		cancel()
		<-done
		promoted.mu.Lock()
		srv := promoted.srv
		promoted.mu.Unlock()
		if srv != nil {
			srv.Stop()
		}
		primary.Stop()
		os.RemoveAll(dir)
	}
	return addr, stop, nil
}

func printEntry(e scenarioEntry) {
	fmt.Printf("  samples=%d commands=%d acks=%d reconnects=%d errors=%d\n",
		e.SamplesSent, e.CommandsSeen, e.AcksSent, e.Reconnects, e.SendErrors)
	fmt.Printf("  send-lag p50/p99 = %.0f/%.0f µs   status p50/p99 = %.0f/%.0f µs\n",
		e.SendLagP50US, e.SendLagP99US, e.StatusP50US, e.StatusP99US)
	fmt.Printf("  peak power %.0f W   worst cycle %d µs   red entries %d   degrades %d   min level %d\n",
		e.MaxPowerW, e.MaxCycleUS, e.RedEntries, e.DegradeOps, e.MinLevel)
}

// mergeEntries folds this run's entries into the persisted file, keyed by
// (scenario, agents): same-key entries are replaced, others kept, output
// sorted — the same trajectory discipline as BENCH_fanout.json.
func mergeEntries(path string, fresh []scenarioEntry) error {
	byKey := map[string]scenarioEntry{}
	if data, err := os.ReadFile(path); err == nil {
		var old []scenarioEntry
		if err := json.Unmarshal(data, &old); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, e := range old {
			byKey[fmt.Sprintf("%s/%d", e.Scenario, e.Agents)] = e
		}
	}
	for _, e := range fresh {
		byKey[fmt.Sprintf("%s/%d", e.Scenario, e.Agents)] = e
	}
	merged := make([]scenarioEntry, 0, len(byKey))
	for _, e := range byKey {
		merged = append(merged, e)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Scenario != merged[j].Scenario {
			return merged[i].Scenario < merged[j].Scenario
		}
		return merged[i].Agents < merged[j].Agents
	})
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
