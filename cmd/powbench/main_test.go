package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestPowbenchSmoke drives every library scenario, scaled down, against
// an embedded live daemon over real loopback TCP — the whole open-loop
// path (dial herds, scripted disconnects, command/ack loop, status
// probes) in a few seconds. CI runs it under -race.
func TestPowbenchSmoke(t *testing.T) {
	if testing.Short() && os.Getenv("POWBENCH_SMOKE") == "" {
		t.Skip("powbench smoke skipped in short mode (set POWBENCH_SMOKE=1 to force)")
	}
	for _, sc := range scenario.All() {
		sc := sc.Scaled(6, 40)
		t.Run(sc.Name, func(t *testing.T) {
			var (
				addr string
				stop func()
				err  error
			)
			if sc.FailoverFrac > 0 {
				addr, stop, err = spawnFailoverDaemon(sc, 10*time.Millisecond, 10*time.Millisecond)
			} else {
				addr, stop, err = spawnDaemon(sc, 10*time.Millisecond)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer stop()
			entry, err := runScenario(engineConfig{
				Addr: addr, SC: sc, Seed: 3,
				Workers: 3, Pipeline: 2,
				SampleEvery: 10 * time.Millisecond,
				StatusEvery: 25 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if entry.Scenario != sc.Name || entry.Agents != sc.Agents || entry.Cycles != sc.Cycles {
				t.Errorf("entry identity = %s/%d/%d", entry.Scenario, entry.Agents, entry.Cycles)
			}
			if entry.SamplesSent == 0 {
				t.Error("no samples sent")
			}
			if entry.StatusP99US <= 0 {
				t.Error("no status probes completed")
			}
			if entry.MaxPowerW <= 0 {
				t.Error("daemon never reported power")
			}
			// Scenarios that script disconnects must actually redial. The
			// failover scenario's whole fleet redials when the primary dies
			// mid-run and the promoted standby rebinds its address.
			if sc.Name == "reconnect-herd" || sc.Name == "rolling-upgrade" || sc.Name == "manager-failover" {
				if entry.Reconnects == 0 {
					t.Error("scripted disconnect scenario never reconnected")
				}
			}
			t.Logf("%s: %+v", sc.Name, entry)
		})
	}
}

func TestMergeEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scenarios.json")
	first := []scenarioEntry{
		{Scenario: "flash-crowd", Agents: 32, Cycles: 240, StatusP99US: 100},
		{Scenario: "diurnal", Agents: 32, Cycles: 288, StatusP99US: 50},
	}
	if err := mergeEntries(path, first); err != nil {
		t.Fatal(err)
	}
	// Second run: replaces the same key, adds a new fleet size.
	second := []scenarioEntry{
		{Scenario: "flash-crowd", Agents: 32, Cycles: 240, StatusP99US: 80},
		{Scenario: "flash-crowd", Agents: 64, Cycles: 240, StatusP99US: 120},
	}
	if err := mergeEntries(path, second); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []scenarioEntry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("merged %d entries, want 3: %+v", len(got), got)
	}
	// Sorted by scenario then agents; same-key entry replaced.
	if got[0].Scenario != "diurnal" || got[1].Agents != 32 || got[2].Agents != 64 {
		t.Errorf("order = %+v", got)
	}
	if got[1].StatusP99US != 80 {
		t.Errorf("same-key entry not replaced: %+v", got[1])
	}
	if data[len(data)-1] != '\n' {
		t.Error("missing trailing newline")
	}
	// Corrupt file is an error, not a silent reset.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeEntries(bad, first); err == nil {
		t.Error("mergeEntries accepted a corrupt baseline")
	}
}

func TestPickScenarios(t *testing.T) {
	all, err := pickScenarios("all")
	if err != nil || len(all) != 7 {
		t.Fatalf("all = %d scenarios, err %v", len(all), err)
	}
	two, err := pickScenarios("diurnal, flash-crowd")
	if err != nil || len(two) != 2 || two[1].Name != "flash-crowd" {
		t.Fatalf("subset = %+v, err %v", two, err)
	}
	if _, err := pickScenarios("nope"); err == nil {
		t.Fatal("pickScenarios accepted an unknown name")
	}
}
