package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/manager"
	"repro/internal/managerd"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// engineConfig parametrises one open-loop scenario run against a live
// manager daemon.
type engineConfig struct {
	// Addr is the daemon's TCP address.
	Addr string
	// SC is the scenario whose script the fleet replays; Seed fixes the
	// script.
	SC   scenario.Scenario
	Seed int64
	// Workers is the number of sender goroutines the fleet is partitioned
	// across; Pipeline is the burst depth — how many cycles' samples one
	// wakeup writes back-to-back per agent (1 = one wakeup per cycle).
	// Deeper pipelines trade per-sample timeliness for fewer wakeups and
	// bigger write bursts, exactly like a pipelined HTTP generator.
	Workers  int
	Pipeline int
	// SampleEvery is the open-loop tick: sample c is due at start +
	// c·SampleEvery regardless of how the previous send went.
	SampleEvery time.Duration
	// StatusEvery is the status-probe cadence on the separate control
	// connection.
	StatusEvery time.Duration
	// Duration, when positive, caps the run even if the script is longer.
	Duration time.Duration
	Verbose  bool
}

func (c engineConfig) validate() error {
	if c.Addr == "" {
		return fmt.Errorf("powbench: empty manager address")
	}
	if err := c.SC.Validate(); err != nil {
		return err
	}
	if c.Workers <= 0 || c.Pipeline <= 0 {
		return fmt.Errorf("powbench: workers and pipeline must be positive")
	}
	if c.SampleEvery <= 0 {
		return fmt.Errorf("powbench: sample-every must be positive")
	}
	return nil
}

// scenarioEntry is one scenario's persisted benchmark record — the
// BENCH_scenarios.json schema benchguard guards.
type scenarioEntry struct {
	Scenario     string  `json:"scenario"`
	Agents       int     `json:"agents"`
	Cycles       int     `json:"cycles"`
	Seed         int64   `json:"seed"`
	SamplesSent  int64   `json:"samples_sent"`
	CommandsSeen int64   `json:"commands_seen"`
	AcksSent     int64   `json:"acks_sent"`
	Reconnects   int64   `json:"reconnects"`
	SendErrors   int64   `json:"send_errors"`
	SendLagP50US float64 `json:"send_lag_p50_us"`
	SendLagP99US float64 `json:"send_lag_p99_us"`
	StatusP50US  float64 `json:"status_p50_us"`
	StatusP99US  float64 `json:"status_p99_us"`
	MaxPowerW    float64 `json:"max_power_w"`
	MaxCycleUS   int64   `json:"max_cycle_us"`
	RedEntries   int     `json:"red_entries"`
	DegradeOps   int     `json:"degrade_ops"`
	RestoreOps   int     `json:"restore_ops"`
	MinLevel     int     `json:"min_level"`
}

// benchAgent is one synthetic agent: a wire connection, the level the
// manager last commanded (applied instantly, acked back — the agent is a
// perfect actuator), and a write lock serialising its two writers (the
// worker's samples, the reader's acks).
type benchAgent struct {
	id       int
	maxLevel int

	mu   sync.Mutex
	conn *wire.Conn

	level    atomic.Int64
	minLevel atomic.Int64

	eng *engine
}

// engine drives one scenario run.
type engine struct {
	cfg    engineConfig
	script [][]scenario.Load
	agents []*benchAgent

	reg     *obs.Registry
	sendLag *obs.Histogram // µs: send completion vs open-loop schedule
	statRTT *obs.Histogram // µs: status probe round trips

	samples    atomic.Int64
	commands   atomic.Int64
	acks       atomic.Int64
	reconnects atomic.Int64
	sendErrs   atomic.Int64

	// maxPower is the highest last_power_w the status probe saw; written
	// only by the prober goroutine, read after it is joined.
	maxPower float64
}

// dial connects the agent and announces it with a hello carrying its
// current level, then starts the command reader.
func (a *benchAgent) dial() error {
	raw, err := net.DialTimeout("tcp", a.eng.cfg.Addr, 5*time.Second)
	if err != nil {
		return err
	}
	c := wire.NewConn(raw)
	if err := c.Send(wire.Envelope{
		Type: wire.KindHello, Node: a.id,
		MaxLevel: a.maxLevel, Level: int(a.level.Load()),
	}); err != nil {
		raw.Close()
		return err
	}
	a.mu.Lock()
	a.conn = c
	a.mu.Unlock()
	go a.read(c)
	return nil
}

// read drains the manager→agent stream, applying commands and acking
// them. Batches (a coalesced command+ping) are unwrapped one level, like
// the real agent.
func (a *benchAgent) read(c *wire.Conn) {
	for {
		env, err := c.Recv()
		if err != nil {
			return
		}
		if env.Type == wire.KindBatch {
			for _, nested := range env.Batch {
				a.handle(nested)
			}
			continue
		}
		a.handle(env)
	}
}

func (a *benchAgent) handle(env wire.Envelope) {
	if env.Type != wire.KindCommand {
		return // pings keep the dead-man switch quiet; nothing to do here
	}
	a.eng.commands.Add(1)
	a.level.Store(int64(env.Level))
	if int64(env.Level) < a.minLevel.Load() {
		a.minLevel.Store(int64(env.Level))
	}
	if err := a.send(wire.Envelope{Type: wire.KindAck, Node: a.id, Seq: env.Seq, Level: env.Level}); err == nil {
		a.eng.acks.Add(1)
	}
}

// send writes one envelope on the current connection, whichever that is —
// an ack raced against a reconnect lands on the new connection, which the
// manager accepts (acks match by node+seq, not by conn).
func (a *benchAgent) send(env wire.Envelope) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn == nil {
		return fmt.Errorf("agent %d offline", a.id)
	}
	return a.conn.Send(env)
}

func (a *benchAgent) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
}

func (a *benchAgent) connected() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.conn != nil
}

// runScenario replays the scenario's deterministic script open-loop
// against the live daemon at cfg.Addr and returns the run's benchmark
// entry.
func runScenario(cfg engineConfig) (scenarioEntry, error) {
	if err := cfg.validate(); err != nil {
		return scenarioEntry{}, err
	}
	eng := &engine{
		cfg:    cfg,
		script: cfg.SC.Script(cfg.Seed),
		reg:    obs.NewRegistry(),
	}
	eng.sendLag = eng.reg.Histogram("bench_send_lag_us")
	eng.statRTT = eng.reg.Histogram("bench_status_rtt_us")

	cycles := len(eng.script)
	if cfg.Duration > 0 {
		if byTime := int(cfg.Duration / cfg.SampleEvery); byTime < cycles {
			cycles = byTime
		}
		if cycles == 0 {
			cycles = 1
		}
	}

	maxLevel := benchModel.Levels() - 1
	eng.agents = make([]*benchAgent, cfg.SC.Agents)
	for i := range eng.agents {
		a := &benchAgent{id: i, maxLevel: maxLevel, eng: eng}
		a.level.Store(int64(maxLevel))
		a.minLevel.Store(int64(maxLevel))
		eng.agents[i] = a
	}

	// Connect the initial fleet (bounded concurrency, herd-style).
	var dialWG sync.WaitGroup
	dialErr := make(chan error, len(eng.agents))
	sem := make(chan struct{}, 64)
	for _, a := range eng.agents {
		if !eng.script[0][a.id].Online {
			continue
		}
		dialWG.Add(1)
		sem <- struct{}{}
		go func(a *benchAgent) {
			defer dialWG.Done()
			defer func() { <-sem }()
			if err := a.dial(); err != nil {
				dialErr <- fmt.Errorf("agent %d: %w", a.id, err)
			}
		}(a)
	}
	dialWG.Wait()
	select {
	case err := <-dialErr:
		return scenarioEntry{}, err
	default:
	}
	defer func() {
		for _, a := range eng.agents {
			a.close()
		}
	}()

	// Status prober: a separate control connection measuring what the
	// paper's operator sees — status RTT under load.
	probeCtx, stopProbe := context.WithCancel(context.Background())
	var probeWG sync.WaitGroup
	statusEvery := cfg.StatusEvery
	if statusEvery <= 0 {
		statusEvery = 100 * time.Millisecond
	}
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		tick := time.NewTicker(statusEvery)
		defer tick.Stop()
		for {
			select {
			case <-probeCtx.Done():
				return
			case <-tick.C:
				t0 := time.Now()
				if st, err := managerd.QueryStatus(cfg.Addr, 2*time.Second); err == nil {
					eng.statRTT.ObserveDuration(time.Since(t0))
					if st.LastPowerW > eng.maxPower {
						eng.maxPower = st.LastPowerW
					}
				}
			}
		}
	}()

	// The open-loop schedule: sample c is due at start + c·SampleEvery.
	// Workers own disjoint agent subsets and never wait for the manager —
	// a slow daemon shows up as send lag, not reduced offered load.
	start := time.Now()
	var workWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		workWG.Add(1)
		go func(w int) {
			defer workWG.Done()
			eng.worker(w, cycles, start)
		}(w)
	}
	workWG.Wait()

	// Let in-flight commands and acks drain before the final readout.
	time.Sleep(4 * cfg.SampleEvery)
	stopProbe()
	probeWG.Wait()

	st, err := managerd.QueryStatus(cfg.Addr, 5*time.Second)
	if err != nil {
		return scenarioEntry{}, fmt.Errorf("final status: %w", err)
	}
	maxPower := eng.maxPower
	if st.LastPowerW > maxPower {
		maxPower = st.LastPowerW
	}

	minLevel := maxLevel
	for _, a := range eng.agents {
		if lv := int(a.minLevel.Load()); lv < minLevel {
			minLevel = lv
		}
	}
	entry := scenarioEntry{
		Scenario:     cfg.SC.Name,
		Agents:       cfg.SC.Agents,
		Cycles:       cycles,
		Seed:         cfg.Seed,
		SamplesSent:  eng.samples.Load(),
		CommandsSeen: eng.commands.Load(),
		AcksSent:     eng.acks.Load(),
		Reconnects:   eng.reconnects.Load(),
		SendErrors:   eng.sendErrs.Load(),
		SendLagP50US: round1(eng.sendLag.Quantile(0.5)),
		SendLagP99US: round1(eng.sendLag.Quantile(0.99)),
		StatusP50US:  round1(eng.statRTT.Quantile(0.5)),
		StatusP99US:  round1(eng.statRTT.Quantile(0.99)),
		MaxPowerW:    round1(maxPower),
		MaxCycleUS:   st.MaxCycleMicros,
		RedEntries:   st.RedEntries,
		DegradeOps:   st.DegradeOps,
		RestoreOps:   st.RestoreOps,
		MinLevel:     minLevel,
	}
	return entry, nil
}

// worker replays the script for the agents it owns (id ≡ w mod Workers).
// Every Pipeline cycles it wakes at the burst's last-due tick and writes
// the pending cycles' samples back-to-back per agent; lag is measured
// against each sample's own due time.
func (eng *engine) worker(w, cycles int, start time.Time) {
	cfg := eng.cfg
	for c := 0; c < cycles; c += cfg.Pipeline {
		burstEnd := c + cfg.Pipeline - 1
		if burstEnd >= cycles {
			burstEnd = cycles - 1
		}
		due := start.Add(time.Duration(burstEnd) * cfg.SampleEvery)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		for _, a := range eng.agents {
			if a.id%cfg.Workers != w {
				continue
			}
			for pc := c; pc <= burstEnd; pc++ {
				eng.stepAgent(a, pc, start)
			}
		}
	}
}

// stepAgent advances one agent through one scripted cycle: offline/online
// transitions (real disconnects and redials against the live daemon),
// upgrade resets, and the cycle's sample.
func (eng *engine) stepAgent(a *benchAgent, c int, start time.Time) {
	ld := eng.script[c][a.id]
	if !ld.Online {
		if a.connected() {
			a.close() // partition/upgrade: the daemon sees a dead conn
		}
		return
	}
	if ld.Reset {
		// Rebooted node: back at the hardware default level.
		a.level.Store(int64(a.maxLevel))
	}
	if !a.connected() {
		if err := a.dial(); err != nil {
			eng.sendErrs.Add(1)
			return
		}
		eng.reconnects.Add(1)
	}
	r := manager.AgentReading{
		ID:       node.ID(a.id),
		Level:    int(a.level.Load()),
		MaxLevel: a.maxLevel,
		Delta:    ld.Delta(benchModel),
		Job:      0,
	}
	env := wire.SampleEnvelope(r)
	env.Job = ld.Job
	if err := a.send(env); err != nil {
		eng.sendErrs.Add(1)
		a.close()
		return
	}
	eng.samples.Add(1)
	due := start.Add(time.Duration(c) * eng.cfg.SampleEvery)
	lag := time.Since(due)
	if lag < 0 {
		lag = 0
	}
	eng.sendLag.ObserveDuration(lag)
}

func round1(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*10) / 10
}
