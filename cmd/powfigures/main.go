// Command powfigures regenerates the paper's evaluation figures as printed
// series/tables:
//
//	powfigures -fig 5            # manager scalability (measured over TCP)
//	powfigures -fig 6            # capping effect vs |A_candidate|
//	powfigures -fig 7            # MPC vs HRI vs uncapped at 128 candidates
//	powfigures -fig thresholds   # §III.A threshold learning
//	powfigures -fig policies-ext # full §IV policy family (paper future work)
//	powfigures -fig faults       # agent sample-loss robustness
//	powfigures -fig thermal      # §I.A heat/reliability/cooling study
//	powfigures -fig controllers  # Algorithm 1 vs feedback PI vs two-level
//	powfigures -fig privileged   # dynamic candidate membership (§II.A)
//	powfigures -fig cabinets     # PDU breakers vs job placement
//	powfigures -fig fairness     # who pays for capping (Jain's index)
//	powfigures -fig tg|period|margins  # design-parameter ablations
//	powfigures -fig all
//
// -scale selects fidelity: quick (minutes of virtual time), fast
// (default; reproduces the shapes in tens of seconds) or paper (24 h
// training + 12 h evaluation per §V.C). -format markdown emits the
// tables as GitHub-flavoured markdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powfigures: ")

	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 5, 6, 7, thresholds, policies-ext, faults, thermal, controllers, privileged, cabinets, fairness, hetero, tg, period, margins, all")
		scale  = flag.String("scale", "fast", "fidelity: quick, fast, paper")
		format = flag.String("format", "text", "output format: text or markdown")
	)
	flag.Parse()

	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick()
	case "fast":
		sc = experiment.Fast()
	case "paper":
		sc = experiment.Paper()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	render := (*experiment.Table).Render
	switch *format {
	case "text":
	case "markdown", "md":
		render = (*experiment.Table).RenderMarkdown
	default:
		log.Fatalf("unknown format %q", *format)
	}
	run := func(name string, fn func() (*experiment.Table, error)) {
		t, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := render(t, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	figures := map[string]func() (*experiment.Table, error){
		"5": func() (*experiment.Table, error) {
			pts, err := experiment.Figure5(experiment.DefaultFigure5())
			if err != nil {
				return nil, err
			}
			return experiment.Figure5Table(pts), nil
		},
		"6": func() (*experiment.Table, error) {
			pts, err := experiment.Figure6(sc, nil, nil)
			if err != nil {
				return nil, err
			}
			return experiment.Figure6Table(pts), nil
		},
		"7": func() (*experiment.Table, error) {
			rs, err := experiment.Figure7(sc)
			if err != nil {
				return nil, err
			}
			t := experiment.PolicyTable("Figure 7: power capping results of different policies (128 candidates)", rs)
			t.Notes = append(t.Notes,
				"paper: ≈2% perf loss, ≈10% Pmax cut, ΔP×T cut 73% (MPC) / 66% (HRI), red never entered")
			return t, nil
		},
		"thresholds": func() (*experiment.Table, error) {
			rs, err := experiment.Thresholds(sc)
			if err != nil {
				return nil, err
			}
			return experiment.ThresholdTable(rs), nil
		},
		"policies-ext": func() (*experiment.Table, error) {
			rs, err := experiment.PolicyFamily(sc)
			if err != nil {
				return nil, err
			}
			return experiment.PolicyTable("Extension E1: full §IV policy family", rs), nil
		},
		"faults": func() (*experiment.Table, error) {
			pts, err := experiment.Faults(sc, []float64{0, 0.05, 0.1, 0.2, 0.4})
			if err != nil {
				return nil, err
			}
			return experiment.FaultTable(pts), nil
		},
		"tg": func() (*experiment.Table, error) {
			pts, err := experiment.AblationTg(sc, nil)
			if err != nil {
				return nil, err
			}
			return experiment.AblationTgTable(pts), nil
		},
		"period": func() (*experiment.Table, error) {
			pts, err := experiment.AblationPeriod(sc, nil)
			if err != nil {
				return nil, err
			}
			return experiment.AblationPeriodTable(pts), nil
		},
		"hetero": func() (*experiment.Table, error) {
			pts, err := experiment.HeteroStudy(sc)
			if err != nil {
				return nil, err
			}
			return experiment.HeteroTable(pts), nil
		},
		"fairness": func() (*experiment.Table, error) {
			pts, err := experiment.FairnessStudy(sc, nil)
			if err != nil {
				return nil, err
			}
			// Append the per-benchmark "who pays" breakdown for the two
			// paper policies after the headline table.
			t := experiment.FairnessTable(pts)
			for _, p := range pts {
				if p.Policy == "mpc" || p.Policy == "hri" {
					var sb strings.Builder
					if err := experiment.BenchmarkTable(p.Policy, p.PerBenchmark).Render(&sb); err != nil {
						return nil, err
					}
					t.Notes = append(t.Notes, "\n"+strings.TrimRight(sb.String(), "\n"))
				}
			}
			return t, nil
		},
		"cabinets": func() (*experiment.Table, error) {
			pts, err := experiment.CabinetStudy(sc)
			if err != nil {
				return nil, err
			}
			return experiment.CabinetTable(pts), nil
		},
		"privileged": func() (*experiment.Table, error) {
			pts, err := experiment.PrivilegedJobs(sc, nil)
			if err != nil {
				return nil, err
			}
			return experiment.PrivilegedTable(pts), nil
		},
		"controllers": func() (*experiment.Table, error) {
			pts, err := experiment.ControllerStudy(sc)
			if err != nil {
				return nil, err
			}
			return experiment.ControllerTable(pts), nil
		},
		"thermal": func() (*experiment.Table, error) {
			pts, err := experiment.ThermalStudy(sc, nil)
			if err != nil {
				return nil, err
			}
			return experiment.ThermalTable(pts), nil
		},
		"margins": func() (*experiment.Table, error) {
			pts, err := experiment.AblationMargins(sc, nil)
			if err != nil {
				return nil, err
			}
			return experiment.AblationMarginsTable(pts), nil
		},
	}

	if *fig == "all" {
		for _, name := range []string{"5", "6", "7", "thresholds", "policies-ext", "faults", "thermal", "controllers", "privileged", "cabinets", "fairness", "hetero", "tg", "period", "margins"} {
			fmt.Printf("── %s ──\n", name)
			run(name, figures[name])
		}
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	run(*fig, fn)
}
