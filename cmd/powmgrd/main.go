// Command powmgrd runs the global power manager daemon: it accepts agent
// connections, runs the power capping algorithm every control cycle, and
// pushes DVFS level commands back to the agents.
//
//	powmgrd -addr 127.0.0.1:7077 -pl 30kW -ph 33kW -policy mpc
//
// With -lease the daemon renews a leadership lease file every -lease-every
// and fences itself if a higher epoch appears in it. A second powmgrd
// started with -standby-of replicates the leader's journal over the wire
// and promotes itself — adopting the replicated journal at a higher epoch
// — once the lease goes stale past -lease-miss-budget renewals:
//
//	powmgrd -addr :7077 -journal primary.journal -lease /shared/lease.json
//	powmgrd -addr :7078 -journal standby.journal -lease /shared/lease.json \
//	        -standby-of 127.0.0.1:7077
//
// Query either with powctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/managerd"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powmgrd: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:7077", "listen address")
		plStr   = flag.String("pl", "30kW", "lower threshold P_L")
		phStr   = flag.String("ph", "33kW", "upper threshold P_H")
		polName = flag.String("policy", "mpc", "target set selection policy")
		period  = flag.Duration("period", time.Second, "control cycle period τ")
		tg      = flag.Int("tg", 10, "steady-green patience T_g (cycles)")
		train   = flag.Duration("learn", 0, "enable §III.A threshold learning with this training window (0 = fixed thresholds)")
		pmaxStr = flag.String("pmax", "40kW", "provision capability seeding the learner (with -learn)")

		journal      = flag.String("journal", "", "crash-recovery journal path (empty = disabled)")
		journalEvery = flag.Int("journal-every", 0, "journal snapshot period in cycles (0 = learner adjustment period)")
		heartbeat    = flag.Int("heartbeat-every", 1, "agent heartbeat period in cycles (-1 = disabled)")
		lostAfter    = flag.Duration("lost-after", 0, "mark silent nodes lost after this (0 = 3× stale window)")
		flapWindow   = flag.Duration("flap-window", 15*time.Second, "reconnect-flap detection window")
		flapLimit    = flag.Int("flap-limit", 6, "reconnects within the flap window before quarantine (-1 = disabled)")
		quarantine   = flag.Duration("quarantine", 30*time.Second, "minimum quarantine duration")

		shards  = flag.Int("shards", 0, "node-state shards, rounded up to a power of two (0 = default)")
		workers = flag.Int("fanout-workers", 0, "command fan-out/retry worker pool size (0 = GOMAXPROCS)")

		metricsAddr  = flag.String("metrics-addr", "", "serve GET /metrics and GET /debug/cycles on this address (empty = disabled)")
		cycleHistory = flag.Int("cycle-history", 0, "staged cycle timelines retained for /debug/cycles (0 = default)")

		leasePath     = flag.String("lease", "", "leadership lease file shared with standbys (empty = HA off)")
		leaseEvery    = flag.Duration("lease-every", 250*time.Millisecond, "lease renewal period")
		standbyOf     = flag.String("standby-of", "", "run as warm standby: replicate this manager's journal, promote when its lease goes stale")
		missBudget    = flag.Int("lease-miss-budget", 4, "stale lease renewals a standby tolerates before declaring the leader dead")
		replicaListen = flag.String("replica-listen", "", "dedicated listener for journal followers and status probes (empty = share -addr)")

		codec = flag.String("codec", "binary", "preferred wire codec negotiated with agents and followers: binary or json")

		coordinator = flag.String("coordinator", "", "run governed: dial this federation coordinator (powcoordd) and cap under its budget grants")
		cabinet     = flag.Int("cabinet", 0, "cabinet index reported to the coordinator (with -coordinator)")
		reportEvery = flag.Duration("report-every", 0, "cabinet report period (0 = control period)")
		budgetGrace = flag.Int("budget-grace", 3, "control periods of coordinator silence tolerated before flooring to the failsafe band")
		failsafePL  = flag.String("failsafe-pl", "", "failsafe band P_L enforced on coordinator silence (empty = hold -pl/-ph)")
		failsafePH  = flag.String("failsafe-ph", "", "failsafe band P_H (with -failsafe-pl)")
	)
	flag.Parse()

	pl, err := units.ParseWatts(*plStr)
	if err != nil {
		log.Fatal(err)
	}
	ph, err := units.ParseWatts(*phStr)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := policy.New(*polName, nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := managerd.Config{
		Addr:           *addr,
		Model:          power.TianheNode(),
		Policy:         pol,
		Tg:             *tg,
		ControlEvery:   *period,
		Thresholds:     power.Thresholds{PL: pl, PH: ph},
		JournalPath:    *journal,
		JournalEvery:   *journalEvery,
		HeartbeatEvery: *heartbeat,
		LostAfter:      *lostAfter,
		FlapWindow:     *flapWindow,
		FlapLimit:      *flapLimit,
		Quarantine:     *quarantine,
		Shards:         *shards,
		FanoutWorkers:  *workers,
		MetricsAddr:    *metricsAddr,
		CycleHistory:   *cycleHistory,
		ReplicaAddr:    *replicaListen,
		WireCodec:      *codec,
	}
	if *coordinator != "" {
		cfg.CoordinatorAddr = *coordinator
		cfg.Cabinet = *cabinet
		cfg.ReportEvery = *reportEvery
		cfg.BudgetGrace = *budgetGrace
		if *failsafePL != "" {
			fpl, err := units.ParseWatts(*failsafePL)
			if err != nil {
				log.Fatal(err)
			}
			fph, err := units.ParseWatts(*failsafePH)
			if err != nil {
				log.Fatal(err)
			}
			cfg.FailsafeBudget = power.Thresholds{PL: fpl, PH: fph}
		}
	}
	if *train > 0 {
		pm, err := units.ParseWatts(*pmaxStr)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Learn = &managerd.LearnConfig{PMax: pm, Training: *train}
	}
	var lease *replica.Lease
	if *leasePath != "" {
		lease = &replica.Lease{Path: *leasePath, Every: *leaseEvery}
	}
	if *standbyOf != "" {
		if lease == nil {
			log.Fatal("-standby-of requires -lease (the standby watches the leader's lease file)")
		}
		runStandby(cfg, lease, *standbyOf, *journal, *missBudget)
		return
	}
	if lease != nil {
		cfg.Lease = lease
		cfg.LeaseHolder = "primary"
	}
	srv, err := managerd.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("powmgrd: listening on %s (policy %s, PL %v, PH %v, τ %v)\n",
		srv.Addr(), *polName, pl, ph, *period)
	if ma := srv.MetricsAddr(); ma != "" {
		fmt.Printf("powmgrd: metrics on http://%s/metrics (cycles on /debug/cycles)\n", ma)
	}

	awaitSignal()
	fmt.Println("powmgrd: shutting down")
	srv.Stop()
	printSummary(srv)
}

// runStandby replicates the leader's journal into the -journal path (or
// memory when empty), watches its lease, and on takeover boots the full
// daemon from the replicated copy at the claimed epoch.
func runStandby(cfg managerd.Config, lease *replica.Lease, leader, journalPath string, missBudget int) {
	store, err := replica.Open(journalPath)
	if err != nil {
		log.Fatal(err)
	}
	var (
		mu       sync.Mutex
		promoted *managerd.Server
	)
	sb, err := replica.NewStandby(replica.StandbyConfig{
		Follower:   replica.FollowerConfig{Addr: leader, Store: store, Backoff: lease.Period()},
		Lease:      lease,
		MissBudget: missBudget,
		Holder:     "standby",
		OnPromote: func(p replica.Promotion) error {
			cfg.JournalPath = ""
			cfg.Journal = p.Store
			cfg.Epoch = p.Epoch
			cfg.Lease = lease
			cfg.LeaseHolder = "standby"
			cfg.TakeoverMicros = p.Leaderless.Microseconds()
			srv, err := managerd.New(cfg)
			if err != nil {
				return err
			}
			if err := srv.Start(); err != nil {
				return err
			}
			mu.Lock()
			promoted = srv
			mu.Unlock()
			fmt.Printf("powmgrd: promoted at epoch %d after %v leaderless, listening on %s\n",
				p.Epoch, p.Leaderless.Round(time.Millisecond), srv.Addr())
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := sb.Run(ctx); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("powmgrd: standby of %s (lease %s every %v, miss budget %d)\n",
		leader, lease.Path, lease.Period(), missBudget)

	awaitSignal()
	fmt.Println("powmgrd: shutting down")
	cancel()
	<-done
	mu.Lock()
	srv := promoted
	mu.Unlock()
	if srv != nil {
		srv.Stop()
		printSummary(srv)
	}
}

func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
}

func printSummary(srv *managerd.Server) {
	st := srv.Status()
	fmt.Printf("powmgrd: %d cycles (g/y/r %d/%d/%d), %d degrades, %d restores, cpu %.4f\n",
		st.Cycles, st.GreenCycles, st.YellowCycles, st.RedCycles,
		st.DegradeOps, st.RestoreOps, st.CPUUtilise)
}
