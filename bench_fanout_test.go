// Fan-out benchmarks for the manager's concurrent actuation path: a real
// managerd.Server against N lightweight fake agents over faultnet, held in
// sustained red so every stepped cycle commands the entire fleet. They
// sweep N ∈ {128, 512, 1024, 4096} and persist their headline numbers to
// BENCH_fanout.json (merged across runs, sorted) so later PRs inherit a
// perf trajectory for the control plane.
//
//	BenchmarkCycleFanout     – one full control cycle incl. fan-out completion
//	BenchmarkStatusUnderLoad – Status() while the control loop is cycling
package repro_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/manager"
	"repro/internal/managerd"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/wire"
)

// fanoutSweep is the fleet-size axis shared by both benchmarks. The
// 16384 point exists for the federated-vs-flat comparison: one flat
// manager over the whole fleet against BenchmarkCycleFanoutFed's 128
// cabinets of 128.
var fanoutSweep = []int{128, 512, 1024, 4096, 16384}

// benchFleet is a manager plus N connected fake agents. The agents send a
// hello and one busy sample, then only drain their read side — they never
// ack, so every cycle's red floor re-commands the full fleet and the
// benchmark measures a complete N-node fan-out per step.
type benchFleet struct {
	srv *managerd.Server
	nw  *faultnet.Network
}

func startBenchFleet(b *testing.B, agents int) *benchFleet {
	b.Helper()
	nw := faultnet.New(1)
	srv, err := managerd.New(managerd.Config{
		Listener:       nw.Listener(),
		Model:          power.TianheNode(),
		Policy:         policy.MPCC{},
		Tg:             3,
		ControlEvery:   time.Hour, // cycles driven explicitly via StepCycle
		Thresholds:     power.Thresholds{PL: 1, PH: 2},
		StaleAfter:     time.Hour,
		CommandTimeout: 5 * time.Second,
		HeartbeatEvery: -1,
		Shards:         128,
		FanoutWorkers:  4,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	f := &benchFleet{srv: srv, nw: nw}
	b.Cleanup(func() {
		srv.Stop()
		nw.Close()
	})
	f.wireAgents(b, agents)
	f.warmRed(b)
	return f
}

// wireAgents connects n fake agents to the fleet's manager and waits for
// all of them to register. Shared with the federated benchmark, where
// each cabinet is one benchFleet.
func (f *benchFleet) wireAgents(b *testing.B, agents int) {
	b.Helper()
	for i := 0; i < agents; i++ {
		raw, err := f.nw.Dial(context.Background(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		c := wire.NewConn(raw)
		// Drain the read side before writing anything: the hello below
		// makes the manager answer with a codec-negotiation reply, and
		// faultnet pipes are unbuffered — an unread reply would deadlock
		// both sides mid-handshake. Real agents read concurrently too.
		go func() { // drain replies/commands/pings so writes never block
			var e wire.Envelope // reused like a real agent's hot read loop
			for {
				if err := c.RecvInto(&e); err != nil {
					return
				}
			}
		}()
		// Advertise binary support like a real agent: the manager's
		// command fan-out to this fleet then runs on the negotiated
		// binary codec (the drain loop above auto-detects per frame).
		if err := c.Send(wire.Envelope{
			Type: wire.KindHello, Node: i, MaxLevel: 9, Level: 9,
			Codecs: []string{wire.CodecBinary},
		}); err != nil {
			b.Fatal(err)
		}
		if err := c.Send(wire.SampleEnvelope(manager.AgentReading{
			ID: node.ID(i), Level: 9, MaxLevel: 9,
			Delta: procfs.Delta{Interval: time.Second, CPUUtil: 0.8,
				MemUsed: 24 << 30, MemTotal: 48 << 30},
		})); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for f.srv.Status().Agents != agents {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d agents registered", f.srv.Status().Agents, agents)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// warmRed runs warm-up cycles: absorb the last in-flight sample decodes,
// let the command/retry state reach steady state, and prove the fleet
// classifies red before timing starts. One cycle is not enough — the
// first few post-registration cycles pay cold caches and initial slice
// growth, and with testing.B's small adaptive b.N probes they would
// dominate the measurement.
func (f *benchFleet) warmRed(b *testing.B) {
	b.Helper()
	for i := 0; i < 5; i++ {
		f.srv.StepCycle()
	}
	if st := f.srv.Status(); st.RedCycles == 0 {
		b.Fatalf("bench fleet not in sustained red: %+v", st)
	}
}

// BenchmarkCycleFanout measures one full control cycle — sense, classify,
// Algorithm 1, and the complete N-node command fan-out — per iteration.
func BenchmarkCycleFanout(b *testing.B) {
	for _, n := range fanoutSweep {
		n := n
		b.Run("n"+itoa(n), func(b *testing.B) {
			f := startBenchFleet(b, n)
			b.ReportAllocs()
			ms := newMemTrack()
			b.ResetTimer()
			var fanout time.Duration
			for i := 0; i < b.N; i++ {
				fanout += f.srv.StepCycle()
			}
			b.StopTimer()
			allocsOp, bytesOp := ms.perOp(b.N)
			st := f.srv.Status()
			fanoutUS := fanout.Microseconds() / int64(b.N)
			b.ReportMetric(float64(fanoutUS), "fanout_us/op")
			recordBench(benchEntry{
				Bench: "CycleFanout", Agents: n,
				NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp:   allocsOp,
				BytesPerOp:    bytesOp,
				FanoutUS:      fanoutUS,
				MaxFanoutUS:   st.MaxFanoutMicros,
				CoalescedCmds: st.CoalescedCmds,
			})
		})
	}
}

// BenchmarkStatusUnderLoad measures Status() — the powctl/observability
// read path — while the control loop is continuously fanning out to the
// fleet, pinning the cost of the shard sweep under actuation contention.
func BenchmarkStatusUnderLoad(b *testing.B) {
	for _, n := range fanoutSweep {
		n := n
		b.Run("n"+itoa(n), func(b *testing.B) {
			f := startBenchFleet(b, n)
			b.ReportAllocs()
			var stop atomic.Bool
			done := make(chan struct{})
			go func() {
				defer close(done)
				for !stop.Load() {
					f.srv.StepCycle()
				}
			}()
			ms := newMemTrack()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = f.srv.Status()
			}
			b.StopTimer()
			allocsOp, bytesOp := ms.perOp(b.N)
			stop.Store(true)
			<-done
			recordBench(benchEntry{
				Bench: "StatusUnderLoad", Agents: n,
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp: allocsOp,
				BytesPerOp:  bytesOp,
			})
		})
	}
}

// ---------------------------------------------------------------------
// BENCH_fanout.json persistence.

// benchEntry is one benchmark outcome persisted to BENCH_fanout.json.
type benchEntry struct {
	Bench         string  `json:"bench"`
	Agents        int     `json:"agents"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	FanoutUS      int64   `json:"fanout_us,omitempty"`
	MaxFanoutUS   int64   `json:"max_fanout_us,omitempty"`
	CoalescedCmds int     `json:"coalesced_cmds,omitempty"`
}

// memTrack snapshots process-wide allocation counters so benchmarks can
// persist allocs/op alongside ns/op. The window spans every goroutine —
// for the fan-out benchmarks that is the point: sender goroutines and
// frame decodes are the cost being guarded, not just the caller's stack.
type memTrack struct{ m runtime.MemStats }

func newMemTrack() *memTrack {
	t := &memTrack{}
	runtime.ReadMemStats(&t.m)
	return t
}

func (t *memTrack) perOp(n int) (allocs, bytes float64) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-t.m.Mallocs) / float64(n),
		float64(after.TotalAlloc-t.m.TotalAlloc) / float64(n)
}

var (
	benchMu      sync.Mutex
	benchResults []benchEntry
)

func recordBench(e benchEntry) {
	benchMu.Lock()
	benchResults = append(benchResults, e)
	benchMu.Unlock()
}

// writeBenchJSON merges this run's entries over any existing
// BENCH_fanout.json (newer result for the same bench/agents pair wins),
// sorts, and writes the file back. No-op when no benchmark ran.
func writeBenchJSON() {
	benchMu.Lock()
	defer benchMu.Unlock()
	if len(benchResults) == 0 {
		return
	}
	const path = "BENCH_fanout.json"
	merged := map[[2]interface{}]benchEntry{}
	var prior []benchEntry
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &prior)
	}
	for _, e := range append(prior, benchResults...) {
		merged[[2]interface{}{e.Bench, e.Agents}] = e
	}
	out := make([]benchEntry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Agents < out[j].Agents
	})
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(path, append(raw, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeBenchJSON()
	os.Exit(code)
}
