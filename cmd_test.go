package repro_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// buildOnce compiles the command binaries used by the CLI tests into a
// shared temporary directory.
var buildOnce = struct {
	sync.Once
	dir string
	err error
}{}

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "powercap-bins")
		if err != nil {
			buildOnce.err = err
			return
		}
		for _, tool := range []string{"powersim", "powfigures", "powmgrd", "powagentd", "powctl", "powbench", "powcoordd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildOnce.err = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
		buildOnce.dir = dir
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.dir
}

func TestPowersimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	dir := t.TempDir()
	series := filepath.Join(dir, "series.csv")
	jobs := filepath.Join(dir, "jobs.csv")
	events := filepath.Join(dir, "events.jsonl")
	traceOut := filepath.Join(dir, "trace.jsonl")

	out, err := exec.Command(filepath.Join(bin, "powersim"),
		"-class", "C", "-training", "20m", "-eval", "30m",
		"-series", series, "-jobs", jobs, "-events", events,
		"-record-trace", traceOut).CombinedOutput()
	if err != nil {
		t.Fatalf("powersim: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"assumptions (§II.D):", "controllability", "P_max", "ΔP×T",
		"performance", "thresholds", "timeline",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("powersim output missing %q:\n%s", want, text)
		}
	}
	for _, f := range []string{series, jobs, events, traceOut} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("artefact %s missing or empty (%v)", f, err)
		}
	}

	// Replay the recorded trace under a different policy.
	out, err = exec.Command(filepath.Join(bin, "powersim"),
		"-class", "C", "-training", "20m", "-eval", "30m",
		"-policy", "hri", "-replay-trace", traceOut).CombinedOutput()
	if err != nil {
		t.Fatalf("powersim replay: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "replaying") {
		t.Errorf("replay output:\n%s", out)
	}
}

func TestPowersimCLIBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	cases := [][]string{
		{"-class", "Z"},
		{"-pmax", "banana"},
		{"-policy", "bogus", "-class", "C", "-eval", "1m"},
	}
	for _, args := range cases {
		if err := exec.Command(filepath.Join(bin, "powersim"), args...).Run(); err == nil {
			t.Errorf("powersim %v succeeded, want failure", args)
		}
	}
}

func TestPowfiguresCLIMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "powfigures"),
		"-fig", "thresholds", "-scale", "quick", "-format", "markdown").CombinedOutput()
	if err != nil {
		t.Fatalf("powfigures: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "| seed |") || !strings.Contains(string(out), "0.930") {
		t.Errorf("markdown output:\n%s", out)
	}
	if err := exec.Command(filepath.Join(bin, "powfigures"), "-fig", "nope").Run(); err == nil {
		t.Error("unknown figure accepted")
	}
}

// fakeManager runs an in-test TCP server standing in for powmgrd whose
// reply behaviour is scripted per connection: reply == "" means read the
// request and go silent (client must hit its timeout); anything else is
// written back verbatim as the status reply line.
func fakeManager(t *testing.T, reply string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
				if reply == "" {
					// Hold the connection open past any client
					// timeout without answering.
					time.Sleep(30 * time.Second)
					return
				}
				_, _ = conn.Write([]byte(reply + "\n"))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestPowctlQueryFailureModes drives the powctl binary through the
// QueryStatus failure paths: a manager that never answers (timeout), one
// that answers garbage (decode error), and one that answers with the
// wrong envelope kind (unexpected reply) — then against a live powmgrd
// for the success path.
func TestPowctlQueryFailureModes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	powctl := filepath.Join(bin, "powctl")

	cases := []struct {
		name  string
		reply string
	}{
		{"timeout", ""},
		{"malformed", `{not json...`},
		{"wrong-kind", `{"type":"command","node":1,"level":2}`},
		{"missing-stats", `{"type":"status"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := fakeManager(t, tc.reply)
			start := time.Now()
			out, err := exec.Command(powctl, "-addr", addr, "-timeout", "500ms").CombinedOutput()
			if err == nil {
				t.Fatalf("powctl against %s manager succeeded:\n%s", tc.name, out)
			}
			if d := time.Since(start); d > 10*time.Second {
				t.Errorf("powctl took %v to fail; timeout not honoured", d)
			}
		})
	}

	// Success path against a live powmgrd with no agents connected.
	t.Run("live-powmgrd", func(t *testing.T) {
		const addr = "127.0.0.1:39717"
		mgr := exec.Command(filepath.Join(bin, "powmgrd"),
			"-addr", addr, "-pl", "400W", "-ph", "600W", "-period", "50ms")
		if err := mgr.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			mgr.Process.Kill()
			mgr.Wait()
		}()
		var lastOut []byte
		var lastErr error
		for i := 0; i < 40; i++ {
			lastOut, lastErr = exec.Command(powctl, "-addr", addr, "-timeout", "2s").CombinedOutput()
			if lastErr == nil {
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		if lastErr != nil {
			t.Fatalf("powctl never reached live powmgrd: %v\n%s", lastErr, lastOut)
		}
		text := string(lastOut)
		for _, want := range []string{"agents          0", "thresholds", "command errors"} {
			if !strings.Contains(text, want) {
				t.Errorf("powctl output missing %q:\n%s", want, text)
			}
		}

		// -json prints the full StatusReply as one decodable object.
		out, err := exec.Command(powctl, "-addr", addr, "-timeout", "2s", "-json").CombinedOutput()
		if err != nil {
			t.Fatalf("powctl -json: %v\n%s", err, out)
		}
		var st wire.StatusReply
		if err := json.Unmarshal(out, &st); err != nil {
			t.Fatalf("powctl -json output not a StatusReply: %v\n%s", err, out)
		}
		if st.ThresholdPLW != 400 || st.ThresholdPHW != 600 {
			t.Errorf("decoded thresholds PL=%v PH=%v, want 400/600", st.ThresholdPLW, st.ThresholdPHW)
		}
	})
}

// httpGetRetry fetches a URL, retrying while the daemon boots.
func httpGetRetry(t *testing.T, url string) string {
	t.Helper()
	var lastErr error
	for i := 0; i < 40; i++ {
		resp, err := http.Get(url)
		if err == nil {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				return string(body)
			}
			lastErr = err
		} else {
			lastErr = err
		}
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return ""
}

// TestMetricsEndpointsCLI boots powmgrd and powagentd with -metrics-addr
// and scrapes both observability endpoints over HTTP: the manager's
// /metrics and /debug/cycles, and the agent's /metrics.
func TestMetricsEndpointsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	const (
		addr       = "127.0.0.1:39727"
		mgrMetrics = "127.0.0.1:39728"
		agtMetrics = "127.0.0.1:39729"
	)
	mgr := exec.Command(filepath.Join(bin, "powmgrd"),
		"-addr", addr, "-pl", "400W", "-ph", "600W", "-period", "50ms",
		"-metrics-addr", mgrMetrics)
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		mgr.Process.Kill()
		mgr.Wait()
	}()
	agent := exec.Command(filepath.Join(bin, "powagentd"),
		"-manager", addr, "-node", "7", "-sample", "50ms", "-tick", "10ms",
		"-metrics-addr", agtMetrics)
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		agent.Process.Kill()
		agent.Wait()
	}()

	// Manager /debug/cycles: poll until the control loop has run so the
	// staged timelines (and their registry histograms) exist.
	var reply struct {
		Cycles int64 `json:"cycles"`
		Spans  []struct {
			Stages []struct {
				Stage string `json:"stage"`
			} `json:"stages"`
		} `json:"spans"`
	}
	for i := 0; i < 40; i++ {
		cyc := httpGetRetry(t, "http://"+mgrMetrics+"/debug/cycles")
		if err := json.Unmarshal([]byte(cyc), &reply); err != nil {
			t.Fatalf("/debug/cycles not JSON: %v\n%s", err, cyc)
		}
		if reply.Cycles > 0 && len(reply.Spans) > 0 {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if reply.Cycles == 0 || len(reply.Spans) == 0 {
		t.Fatalf("/debug/cycles never showed a cycle: %+v", reply)
	}
	if st := reply.Spans[0].Stages; len(st) == 0 || st[0].Stage != "sense" {
		t.Errorf("first cycle does not open with sense: %+v", st)
	}

	// Manager /metrics: registry samples including the staged-cycle
	// histograms, live with the control loop.
	body := httpGetRetry(t, "http://"+mgrMetrics+"/metrics")
	for _, want := range []string{"cycles ", "agents ", "cycle_stage_sense_micros_count", "pl_w 400"} {
		if !strings.Contains(body, want) {
			t.Errorf("manager /metrics missing %q:\n%s", want, body)
		}
	}

	// Agent /metrics: its own counters, samples flowing.
	abody := httpGetRetry(t, "http://"+agtMetrics+"/metrics")
	for _, want := range []string{"samples_pushed", "commands_applied", "failsafe_trips"} {
		if !strings.Contains(abody, want) {
			t.Errorf("agent /metrics missing %q:\n%s", want, abody)
		}
	}

	// powctl -watch renders bounded sparkline polls against the live
	// manager and exits on its own.
	out, err := exec.Command(filepath.Join(bin, "powctl"),
		"-addr", addr, "-watch", "100ms", "-samples", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("powctl -watch: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"poll 4/4", "power", "collect", "fan-out", "select Δ", "µs"} {
		if !strings.Contains(text, want) {
			t.Errorf("powctl -watch output missing %q:\n%s", want, text)
		}
	}
}

// TestPowbenchCLI drives the powbench binary against a separately-running
// powmgrd process — the literal "open-loop driver against a live powmgrd"
// acceptance path — and checks the persisted BENCH entry.
func TestPowbenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	const addr = "127.0.0.1:39737"
	// Thresholds sized for the scaled 8-agent fleet (uncapped ≈2.1 kW).
	mgr := exec.Command(filepath.Join(bin, "powmgrd"),
		"-addr", addr, "-pl", "1300W", "-ph", "1600W", "-period", "25ms", "-tg", "3", "-policy", "mpc-c")
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		mgr.Process.Kill()
		mgr.Wait()
	}()
	// Wait for the daemon to accept status queries.
	for i := 0; i < 40; i++ {
		if exec.Command(filepath.Join(bin, "powctl"), "-addr", addr, "-timeout", "1s").Run() == nil {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	out := filepath.Join(t.TempDir(), "BENCH_scenarios.json")
	cmd := exec.Command(filepath.Join(bin, "powbench"),
		"-addr", addr, "-scenarios", "flash-crowd", "-connections", "8", "-cycles", "60",
		"-sample-every", "10ms", "-workers", "4", "-pipeline", "2", "-out", out)
	text, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("powbench: %v\n%s", err, text)
	}
	for _, want := range []string{"flash-crowd", "samples=", "status p50/p99", "wrote"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("powbench output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Scenario    string  `json:"scenario"`
		Agents      int     `json:"agents"`
		Samples     int64   `json:"samples_sent"`
		StatusP99US float64 `json:"status_p99_us"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("BENCH file not JSON: %v\n%s", err, data)
	}
	if len(entries) != 1 || entries[0].Scenario != "flash-crowd" || entries[0].Agents != 8 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Samples == 0 || entries[0].StatusP99US <= 0 {
		t.Errorf("empty measurements: %+v", entries[0])
	}

	// Unknown scenario fails loudly.
	if err := exec.Command(filepath.Join(bin, "powbench"), "-scenarios", "bogus").Run(); err == nil {
		t.Error("powbench accepted an unknown scenario")
	}
}

// TestPowctlCoordinatorStatus points powctl at a live powcoordd with one
// governed powmgrd cabinet under it: the CLI must detect from the reply
// alone that it dialled a coordinator and render the coordinator block —
// budget, fleet roll-up and one child line with liveness, negotiated
// codec and granted band. -json must round-trip the full envelope with
// the coordinator marker node and the child Batch row.
func TestPowctlCoordinatorStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	const coordAddr = "127.0.0.1:39747"
	coord := exec.Command(filepath.Join(bin, "powcoordd"),
		"-addr", coordAddr, "-budget", "900W", "-ph", "1100W", "-period", "100ms")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		coord.Process.Kill()
		coord.Wait()
	}()
	mgr := exec.Command(filepath.Join(bin, "powmgrd"),
		"-addr", "127.0.0.1:39748", "-pl", "400W", "-ph", "600W", "-period", "100ms",
		"-coordinator", coordAddr, "-cabinet", "2")
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		mgr.Process.Kill()
		mgr.Wait()
	}()

	powctl := filepath.Join(bin, "powctl")
	var text string
	for i := 0; i < 40; i++ {
		out, err := exec.Command(powctl, "-addr", coordAddr, "-timeout", "2s").CombinedOutput()
		text = string(out)
		if err == nil && strings.Contains(text, "child 2") {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	for _, want := range []string{
		"coordinator", "budget          PL 900.0 W, PH 1100.0 W",
		"children        1 known", "child 2", "live", "grant",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("powctl coordinator output missing %q:\n%s", want, text)
		}
	}

	// -json: the full envelope, with the coordinator marker node and the
	// child report row carrying the grant.
	out, err := exec.Command(powctl, "-addr", coordAddr, "-timeout", "2s", "-json").CombinedOutput()
	if err != nil {
		t.Fatalf("powctl -json: %v\n%s", err, out)
	}
	var env wire.Envelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatalf("powctl -json output not an envelope: %v\n%s", err, out)
	}
	if env.Node != -1 || env.Stats == nil {
		t.Fatalf("not a coordinator envelope: node=%d stats=%v", env.Node, env.Stats != nil)
	}
	if len(env.Batch) != 1 || env.Batch[0].Node != 2 || env.Batch[0].BudgetW <= 0 {
		t.Errorf("child batch rows = %+v", env.Batch)
	}
	if env.Stats.ThresholdPLW != 900 {
		t.Errorf("coordinator budget = %v, want 900", env.Stats.ThresholdPLW)
	}
}

func TestDaemonCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end")
	}
	bin := binaries(t)
	// Manager on an ephemeral-ish port (pick one unlikely to clash).
	const addr = "127.0.0.1:39707"
	mgr := exec.Command(filepath.Join(bin, "powmgrd"),
		"-addr", addr, "-pl", "400W", "-ph", "600W", "-period", "100ms")
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		mgr.Process.Kill()
		mgr.Wait()
	}()

	agent := exec.Command(filepath.Join(bin, "powagentd"),
		"-manager", addr, "-node", "3", "-sample", "100ms", "-tick", "20ms")
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		agent.Process.Kill()
		agent.Wait()
	}()

	// powctl retries until the daemon answers with a connected agent.
	deadline := 40
	for i := 0; i < deadline; i++ {
		out, err := exec.Command(filepath.Join(bin, "powctl"), "-addr", addr).CombinedOutput()
		if err == nil && strings.Contains(string(out), "agents          1") {
			if !strings.Contains(string(out), "thresholds") {
				t.Errorf("powctl output:\n%s", out)
			}
			return
		}
		exec.Command("sleep", "0.25").Run()
	}
	t.Fatal("powctl never saw the connected agent")
}
