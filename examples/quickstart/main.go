// Quickstart: build the paper's 128-node Tianhe-1A environment, learn the
// power thresholds on an uncapped training period, then run the MPC
// capping policy and print the paper's metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// Start from the paper's environment (128 nodes, NPB class D,
	// 31 kW provision capability) and shrink the timeline so the example
	// finishes in a couple of seconds: class C jobs are ~16× shorter.
	cfg := core.DefaultConfig()
	cfg.Class = workload.ClassC
	cfg.PolicyName = "mpc"
	cfg.Training = 30 * time.Minute // uncapped threshold learning (§III.A)

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, theoretical peak %v, provision %v\n",
		cfg.Nodes, sys.Traits().TheoreticalPeak, cfg.PMax)

	res, err := sys.Run(2 * time.Hour) // virtual hours, not wall time
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("learned thresholds: P_L=%v P_H=%v (training peak %v)\n",
		res.Thresholds.PL, res.Thresholds.PH, res.TrainingPeak)
	fmt.Printf("peak power   %v\n", res.Summary.PMax)
	fmt.Printf("mean power   %v\n", res.Summary.PMean)
	fmt.Printf("ΔP×T         %.4f\n", res.Summary.Overspend)
	fmt.Printf("performance  %.4f (1.0 = no loss)\n", res.Summary.Performance)
	fmt.Printf("lossless     %d of %d jobs\n", res.Summary.CPLJ, res.Summary.JobsDone)
	fmt.Printf("red state    entered %d times (paper: never)\n", res.ManagerStats.RedEntries)
}
