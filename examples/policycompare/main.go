// Policycompare: run the full §IV target set selection policy family —
// state-based (MPC, MPC-C, LPC, LPC-C, BFP) and change-based (HRI, HRI-C)
// plus baselines — on the same workload, and rank them on the paper's
// metrics. This is the experiment the paper's conclusion names as future
// work ("implementing other selection policies and conducting more
// experiments ... to compare their power and performance behaviors").
package main

import (
	"log"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	sc := experiment.Scale{
		Class:    workload.ClassC, // short jobs: the comparison runs in seconds
		Training: 30 * time.Minute,
		Eval:     3 * time.Hour,
		Seeds:    []uint64{1, 2},
	}
	rs, err := experiment.PolicyFamily(sc)
	if err != nil {
		log.Fatal(err)
	}
	t := experiment.PolicyTable("Policy family comparison (class C, 3 h evaluation, 2 seeds)", rs)
	t.Notes = append(t.Notes,
		"cut columns are relative to the uncapped 'none' baseline",
		"'all' throttles indiscriminately — the related-work baseline the paper argues against",
	)
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
