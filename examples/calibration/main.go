// Calibration: derive formula (1)'s coefficients for a node type the way
// the paper's authors had to on real hardware — run a load sweep at every
// DVFS level with a reference power meter attached, then least-squares
// fit P(l) = P_idle(l) + util·ΣP_cpu(l) + memfrac·P_mem(l) +
// nicfrac·P_NIC(l). The fitted model is what profiling agents then use
// in production; its residual error is the "sufficient accuracy" the
// Observability assumption (§II.D) demands.
//
// Here the "real hardware" is a simulated node with 2% model distortion
// and a noisy meter, so the example also shows how much error survives a
// realistic campaign.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/units"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	// The device under test: a Tianhe node whose true draw deviates from
	// the nominal datasheet model by a fixed ±2% (manufacturing spread).
	dut, err := node.New(0, node.Config{
		Model:        power.TianheNode(),
		Controllable: true,
		ModelError:   0.02,
		Rng:          rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	meterNoise := 0.005 // 0.5% reference meter accuracy

	cal, err := power.NewCalibrator(dut.Levels(), dut.Model().NIC.Bandwidth)
	if err != nil {
		log.Fatal(err)
	}

	// Metering campaign: hold each load point for one sampling interval
	// at every level, reading the meter each time.
	points := 0
	var now time.Duration
	prev := dut.Snapshot(now)
	for l := 0; l < dut.Levels(); l++ {
		if err := dut.SetLevel(l); err != nil {
			log.Fatal(err)
		}
		for _, util := range []float64{0, 0.33, 0.66, 1.0} {
			for _, mem := range []float64{0.1, 0.5, 0.9} {
				for _, nic := range []float64{0, 0.4} {
					dut.SetLoad(node.Load{CPUUtil: util, MemFrac: mem, NICFrac: nic})
					dut.Tick(time.Second)
					now += time.Second
					cur := dut.Snapshot(now)
					d, err := procfs.Diff(prev, cur)
					if err != nil {
						log.Fatal(err)
					}
					prev = cur
					measured := float64(dut.TruePower()) * (1 + rng.NormFloat64()*meterNoise)
					if err := cal.Add(l, d, units.Watts(measured)); err != nil {
						log.Fatal(err)
					}
					points++
				}
			}
		}
	}
	fitted, err := cal.Fit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d metered load points across %d levels\n\n", points, dut.Levels())

	fmt.Printf("%-6s  %-12s  %-12s  %-12s  %-12s\n", "level", "P_idle", "ΣP_cpu", "P_mem", "P_NIC")
	for _, l := range []int{0, 4, 9} {
		idle, cpu, mem, nic := fitted.Coefficients(l)
		fmt.Printf("%-6d  %-12v  %-12v  %-12v  %-12v\n", l, idle, cpu, mem, nic)
	}

	// Validation: unseen random load points against the true draw.
	worst := 0.0
	for i := 0; i < 500; i++ {
		l := rng.Intn(dut.Levels())
		if err := dut.SetLevel(l); err != nil {
			log.Fatal(err)
		}
		dut.SetLoad(node.Load{CPUUtil: rng.Float64(), MemFrac: rng.Float64(), NICFrac: rng.Float64()})
		dut.Tick(time.Second)
		now += time.Second
		cur := dut.Snapshot(now)
		d, _ := procfs.Diff(prev, cur)
		prev = cur
		truth := float64(dut.TruePower())
		est := float64(fitted.Estimate(d, l))
		if rel := math.Abs(est-truth) / truth; rel > worst {
			worst = rel
		}
	}
	fmt.Printf("\nworst estimation error on 500 unseen load points: %.2f%%\n", 100*worst)
	fmt.Println("(the paper's power capping needs only \"sufficient accuracy\" — this passes)")
}
