// Provisioning: a capacity-planning study built on the library. The
// paper's motivation (§I.A) is that provisioning a cluster's power feed at
// the theoretical peak wastes construction cost, because real workloads
// never synchronise their spikes. This example quantifies the trade-off:
// for a range of provision capabilities below the theoretical peak, it
// reports how much overspend an *uncapped* system would incur versus one
// under MPC capping — i.e. how far capping lets the facility shrink its
// feed while keeping the accumulated thermal effect (ΔP×T) negligible.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/units"
	"repro/internal/workload"
)

func run(policy string) (*metrics.Series, units.Watts, error) {
	cfg := core.DefaultConfig()
	cfg.Class = workload.ClassC
	cfg.PolicyName = policy
	cfg.Training = 30 * time.Minute
	sys, err := core.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	res, err := sys.Run(3 * time.Hour)
	if err != nil {
		return nil, 0, err
	}
	return res.Series, sys.Traits().TheoreticalPeak, nil
}

func main() {
	uncapped, pthy, err := run("none")
	if err != nil {
		log.Fatal(err)
	}
	capped, _, err := run("mpc")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("theoretical peak P_thy = %v\n", pthy)
	fmt.Printf("uncapped observed peak = %v (%.0f%% of P_thy)\n\n",
		uncapped.Max(), 100*float64(uncapped.Max())/float64(pthy))
	fmt.Printf("%-12s  %-12s  %-14s  %-14s\n", "provision", "% of P_thy", "ΔP×T uncapped", "ΔP×T capped")
	for _, frac := range []float64{0.85, 0.80, 0.75, 0.70, 0.65, 0.60} {
		th := units.Watts(frac * float64(pthy))
		fmt.Printf("%-12v  %-12s  %-14.5f  %-14.5f\n",
			th, fmt.Sprintf("%.0f%%", 100*frac),
			uncapped.OverspendRatio(th), capped.OverspendRatio(th))
	}
	fmt.Println("\nreading: pick the smallest feed whose capped ΔP×T is acceptable;")
	fmt.Println("capping moves the viable provision several steps below the uncapped one.")
}
