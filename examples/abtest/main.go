// Abtest: a fair A/B comparison of two capping policies on *literally*
// the same workload. A first run records the generated job trace; every
// policy then replays that exact trace, so differences in the metrics are
// attributable to the policy alone — not to the workload draw. This is
// the record/replay facility a production deployment would use to test a
// policy change against last week's real job log.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/workload"
)

func run(policy string, tr *replay.Trace, record bool) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.Class = workload.ClassC
	cfg.PolicyName = policy
	cfg.Training = 30 * time.Minute
	cfg.WorkloadTrace = tr
	cfg.RecordTrace = record
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run(3 * time.Hour)
}

func main() {
	// Pass 1: uncapped run, recording the workload trace.
	base, err := run("none", nil, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d job requests from the baseline run\n\n", base.Trace.Len())

	fmt.Printf("%-8s  %-10s  %-10s  %-8s  %-6s\n", "policy", "Pmax", "ΔP×T", "perf", "CPLJ")
	fmt.Printf("%-8s  %-10v  %-10.5f  %-8.4f  %-6.3f\n", "none",
		base.Summary.PMax, base.Summary.Overspend, base.Summary.Performance, base.Summary.CPLJFrac)

	// Pass 2: each policy replays the identical trace.
	for _, pol := range []string{"mpc", "mpc-c", "hri", "bfp"} {
		res, err := run(pol, base.Trace, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %-10v  %-10.5f  %-8.4f  %-6.3f\n", pol,
			res.Summary.PMax, res.Summary.Overspend, res.Summary.Performance, res.Summary.CPLJFrac)
	}
	fmt.Println("\nevery row saw the same jobs in the same order — differences are the policy's doing.")
}
