// Daemons: the architecture of Figure 1 as real processes — a global
// manager daemon and a fleet of per-node profiling agents talking
// newline-JSON over loopback TCP. The agents drive simulated Tianhe nodes
// in real time; the manager runs Algorithm 1 every 100 ms with thresholds
// chosen inside the fleet's power band, so degrade/restore commands
// actually flow. After a few seconds the example prints the manager's
// status — including its own measured CPU cost, the quantity Figure 5
// plots.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/agentd"
	"repro/internal/managerd"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

func main() {
	const agents = 32

	// Thresholds inside the band of 32 busy simulated nodes (~250 W
	// each): the fleet will cross P_L regularly and get throttled.
	srv, err := managerd.New(managerd.Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPCC{},
		Tg:           10,
		ControlEvery: 100 * time.Millisecond,
		Thresholds:   power.Thresholds{PL: units.KW(6.8), PH: units.KW(8.2)},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()
	fmt.Printf("manager listening on %s\n", srv.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fleet := make([]*agentd.Agent, 0, agents)
	for i := 0; i < agents; i++ {
		a, err := agentd.New(agentd.Config{
			NodeID:      node.ID(i),
			ManagerAddr: srv.Addr(),
			SampleEvery: 100 * time.Millisecond,
			TickEvery:   20 * time.Millisecond,
			Model:       power.TianheNode(),
			Seed:        int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		fleet = append(fleet, a)
		go func() { _ = a.Run(ctx) }()
	}
	fmt.Printf("%d agents connected, capping for 5 s of wall time...\n\n", agents)
	time.Sleep(5 * time.Second)

	st := srv.Status()
	fmt.Printf("agents        %d\n", st.Agents)
	fmt.Printf("cycles        %d (green %d, yellow %d, red %d)\n",
		st.Cycles, st.GreenCycles, st.YellowCycles, st.RedCycles)
	fmt.Printf("ops           degrade %d, restore %d\n", st.DegradeOps, st.RestoreOps)
	fmt.Printf("fleet power   %.0f W (PL %.0f, PH %.0f)\n", st.LastPowerW, st.ThresholdPLW, st.ThresholdPHW)
	fmt.Printf("manager cost  %.4f CPU utilisation (Figure 5's metric)\n", st.CPUUtilise)

	applied, floor := 0, 10
	for _, a := range fleet {
		applied += a.CommandsApplied()
		if l := a.Level(); l < floor {
			floor = l
		}
	}
	fmt.Printf("agents        %d commands applied, lowest level reached %d\n", applied, floor)
}
