// Three-tier fan-out benchmark: the recursive control plane at scale. A
// facility fedd governs 4 row fedds, each governing 8 cabinet managers
// of 128 fake agents (4096 total); every iteration steps one full
// three-tier round — a facility cycle granting the rows, a row cycle per
// row re-dividing its grant over its cabinets, then a complete
// Algorithm-1 cycle with full command fan-out inside every cabinet. The
// row tier's cost is pure re-division and 8-way grant fan-out, so the
// deep tree should price within noise of the flat two-tier federation
// at the same agent count (BenchmarkCycleFanoutFed at 4096).
//
// Results persist to BENCH_fanout.json as bench "CycleFanoutFed3" keyed
// by total agent count; CI guards the baseline alongside CycleFanoutFed.
package repro_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/fedd"
	"repro/internal/managerd"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

const (
	fed3Rows       = 4
	fed3CabsPerRow = 8
	fed3Agents     = fed3Rows * fed3CabsPerRow * fedCabinetSize
)

// fed3BenchFleet is a facility over rows over cabinets, every cabinet a
// benchFleet held in sustained red by its granted band: the facility's
// budget is 1 W per cabinet (equal-split twice into P_L 1 W / P_H 2 W
// grants), far below any fleet's draw.
type fed3BenchFleet struct {
	fac    *fedd.Server
	facNet *faultnet.Network
	rows   []*fedd.Server
	cabs   []*benchFleet
}

func startFed3BenchFleet(b *testing.B) *fed3BenchFleet {
	b.Helper()
	const cabinets = fed3Rows * fed3CabsPerRow
	facNet := faultnet.New(9002)
	fac, err := fedd.New(fedd.Config{
		Listener:     facNet.Listener(),
		Budget:       units.Watts(cabinets),
		PH:           units.Watts(2 * cabinets),
		ControlEvery: time.Hour, // cycles driven explicitly via StepCycle
		StaleAfter:   time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := fac.Start(); err != nil {
		b.Fatal(err)
	}
	f := &fed3BenchFleet{fac: fac, facNet: facNet}
	b.Cleanup(func() {
		fac.Stop()
		facNet.Close()
	})

	deadline := time.Now().Add(60 * time.Second)
	rowNets := make([]*faultnet.Network, fed3Rows)
	for r := 0; r < fed3Rows; r++ {
		r := r
		rowNet := faultnet.New(9100 + int64(r))
		rowNets[r] = rowNet
		row, err := fedd.New(fedd.Config{
			Listener:     rowNet.Listener(),
			Budget:       units.Watts(fed3CabsPerRow),
			PH:           units.Watts(2 * fed3CabsPerRow),
			ControlEvery: time.Hour,
			StaleAfter:   time.Hour,
			ReportEvery:  time.Hour,
			Row:          r,
			ParentDial: func() (net.Conn, error) {
				return facNet.Dial(context.Background(), uint64(r))
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := row.Start(); err != nil {
			b.Fatal(err)
		}
		f.rows = append(f.rows, row)
		b.Cleanup(func() {
			row.Stop()
			rowNet.Close()
		})
	}

	// All rows subscribed, one facility round grants them, and every row
	// must be governed (dividing its granted band) before its cabinets
	// boot.
	for len(f.fac.CabinetStates()) != fed3Rows {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d rows subscribed", len(f.fac.CabinetStates()), fed3Rows)
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.fac.StepCycle()
	for _, row := range f.rows {
		for !row.Governed() {
			if time.Now().After(deadline) {
				b.Fatal("row never governed by the facility")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	for r, row := range f.rows {
		rowNet := rowNets[r]
		for cab := 0; cab < fed3CabsPerRow; cab++ {
			cab := cab
			nw := faultnet.New(1000*int64(r+1) + int64(cab))
			srv, err := managerd.New(managerd.Config{
				Listener:     nw.Listener(),
				Model:        power.TianheNode(),
				Policy:       policy.MPCC{},
				Tg:           3,
				ControlEvery: time.Hour,
				Thresholds:   power.Thresholds{PL: 1, PH: 2},
				Cabinet:      cab,
				CoordinatorDial: func() (net.Conn, error) {
					return rowNet.Dial(context.Background(), uint64(cab))
				},
				ReportEvery:    time.Hour,
				StaleAfter:     time.Hour,
				CommandTimeout: 5 * time.Second,
				HeartbeatEvery: -1,
				Shards:         128,
				FanoutWorkers:  4,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			cf := &benchFleet{srv: srv, nw: nw}
			b.Cleanup(func() {
				srv.Stop()
				nw.Close()
			})
			f.cabs = append(f.cabs, cf)
			cf.wireAgents(b, fedCabinetSize)
		}
		// Every cabinet of this row subscribed, one row round grants them.
		for len(row.CabinetStates()) != fed3CabsPerRow {
			if time.Now().After(deadline) {
				b.Fatalf("row %d: only %d of %d cabinets subscribed",
					r, len(row.CabinetStates()), fed3CabsPerRow)
			}
			time.Sleep(5 * time.Millisecond)
		}
		row.StepCycle()
	}
	for _, cf := range f.cabs {
		for !cf.srv.Status().Governed {
			if time.Now().After(deadline) {
				b.Fatalf("cabinet never governed: %+v", cf.srv.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
		cf.warmRed(b)
	}
	return f
}

// step runs one three-tier round: facility, every row, then a full
// control cycle in every cabinet. Returns the summed in-cabinet fan-out
// time.
func (f *fed3BenchFleet) step() time.Duration {
	f.fac.StepCycle()
	for _, row := range f.rows {
		row.StepCycle()
	}
	var fanout time.Duration
	for _, cf := range f.cabs {
		fanout += cf.srv.StepCycle()
	}
	return fanout
}

// BenchmarkCycleFanoutFed3 measures one three-tier federation round per
// iteration: budget division and grant fan-out at the facility and every
// row, plus a full Algorithm-1 cycle with 128-node command fan-out
// across all 32 cabinets.
func BenchmarkCycleFanoutFed3(b *testing.B) {
	b.Run("n"+itoa(fed3Agents), func(b *testing.B) {
		f := startFed3BenchFleet(b)
		b.ReportAllocs()
		ms := newMemTrack()
		b.ResetTimer()
		var fanout time.Duration
		for i := 0; i < b.N; i++ {
			fanout += f.step()
		}
		b.StopTimer()
		allocsOp, bytesOp := ms.perOp(b.N)
		nsOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(nsOp/float64(fed3Agents), "ns/agent")
		recordBench(benchEntry{
			Bench: "CycleFanoutFed3", Agents: fed3Agents,
			NsPerOp:     nsOp,
			AllocsPerOp: allocsOp,
			BytesPerOp:  bytesOp,
			FanoutUS:    fanout.Microseconds() / int64(b.N),
		})
	})
}
